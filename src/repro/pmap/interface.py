"""The machine-independent / machine-dependent interface.

Section 3.6: "The purpose of Mach's machine dependent code is the
management of physical address maps (called pmaps). ... the pmap module
need not keep track of all currently valid mappings.  Virtual-to-
physical mappings may be thrown away at almost any time to improve
either space or speed efficiency and new mappings need not always be
made immediately but can often be lazy-evaluated. ... all virtual memory
information can be reconstructed at fault time from Mach's machine
independent data structures."

This module defines:

* :class:`Pmap` — the abstract per-task physical map, exporting exactly
  the required routine set of Table 3-3 and the optional set of
  Table 3-4 (as methods; module-level functions with the paper's
  spelling are provided at the bottom);
* :class:`PmapSystem` — state shared by all pmaps of one machine: the
  physical-to-virtual (pv) table used by ``pmap_remove_all`` and
  ``pmap_copy_on_write``, hardware-maintained reference/modify bits, and
  the multiprocessor TLB-shootdown machinery implementing the three
  strategies of Section 5.2.
"""

from __future__ import annotations

import abc
import enum
import itertools
from typing import Optional

from repro.core.constants import FaultType, VMProt, trunc_page
from repro.hw.machine import Machine

_pmap_ids = itertools.count(1)


class ShootdownStrategy(enum.Enum):
    """Section 5.2's three answers to non-coherent TLBs.

    IMMEDIATE — "forcibly interrupt all CPUs which may be using a shared
    portion of an address map so that their address translation buffers
    may be flushed" (used "whenever a change is time critical").

    DEFERRED — "postpone use of a changed mapping until all CPUs have
    taken a timer interrupt (and had a chance to flush)" (used by the
    paging system before pageout).

    LAZY — "allow temporary inconsistency", acceptable when "the
    semantics of the operation being performed do not require or even
    allow simultaneity" (e.g. protection changes propagate per-CPU as
    each next touches the map).
    """

    IMMEDIATE = "immediate"
    DEFERRED = "deferred"
    LAZY = "lazy"


class PmapStats:
    """Operation counters for one pmap (reported by benchmarks)."""

    def __init__(self) -> None:
        self.enters = 0
        self.removes = 0
        self.protects = 0
        self.forgets = 0

    def __repr__(self) -> str:
        return (f"PmapStats(enters={self.enters}, removes={self.removes}, "
                f"protects={self.protects}, forgets={self.forgets})")


class PmapSystem:
    """Machine-wide machine-dependent state.

    Owns the pv (physical-to-virtual) table: for each Mach frame, the
    list of ``(pmap, vaddr)`` mappings currently installed, which is what
    makes ``pmap_remove_all(phys)`` and ``pmap_copy_on_write(phys)``
    possible.  Also owns reference/modify bit state and TLB shootdowns.
    """

    def __init__(self, machine: Machine,
                 strategy: ShootdownStrategy = ShootdownStrategy.IMMEDIATE
                 ) -> None:
        self.machine = machine
        self.strategy = strategy
        self.page_size = machine.page_size
        self._pv: dict[int, list[tuple["Pmap", int]]] = {}
        self._referenced: set[int] = set()
        self._modified: set[int] = set()
        #: Scratch space for MMU models with machine-wide structures
        #: (the RT PC's single inverted page table, SUN 3 contexts).
        self.md_shared: dict[str, object] = {}
        #: Which CPU the kernel is "running on" for shootdown purposes.
        self.current_cpu_id = 0
        self.shootdowns = 0
        self.ipis_sent = 0
        self.deferred_flushes = 0
        #: Debug hook (``repro.analysis.invariants``): called with no
        #: arguments after every shootdown and ``pmap_update``.  None
        #: (the default) costs nothing.
        self.debug_hook = None
        #: The machine's instrumentation bus; shootdowns publish a
        #: ``pmap/shootdown`` event *before* any flush lands, so a
        #: happens-before checker sees the invalidation window open
        #: first.
        self.events = machine.events

    # ------------------------------------------------------------------
    # Reference / modify bits (maintained by the simulated MMU)
    # ------------------------------------------------------------------

    def _frame(self, paddr: int) -> int:
        return trunc_page(paddr, self.page_size)

    def note_access(self, paddr: int, write: bool) -> None:
        """Called by the MMU on every successful translation."""
        frame = self._frame(paddr)
        self._referenced.add(frame)
        if write:
            self._modified.add(frame)

    def is_referenced(self, phys: int) -> bool:
        """Hardware reference bit for the frame."""
        return self._frame(phys) in self._referenced

    def clear_reference(self, phys: int) -> None:
        """Clear the frame's hardware reference bit."""
        self._referenced.discard(self._frame(phys))

    def is_modified(self, phys: int) -> bool:
        """Hardware modify bit for the frame."""
        return self._frame(phys) in self._modified

    def clear_modify(self, phys: int) -> None:
        """Clear the frame's hardware modify bit."""
        self._modified.discard(self._frame(phys))

    # ------------------------------------------------------------------
    # Physical-to-virtual table
    # ------------------------------------------------------------------

    def pv_enter(self, pmap: "Pmap", vaddr: int, phys: int) -> None:
        """Record a (pmap, vaddr) mapping of a frame."""
        frame = self._frame(phys)
        mappings = self._pv.setdefault(frame, [])
        key = (pmap, vaddr)
        if key not in mappings:
            mappings.append(key)

    def pv_remove(self, pmap: "Pmap", vaddr: int, phys: int) -> None:
        """Forget a (pmap, vaddr) mapping of a frame."""
        frame = self._frame(phys)
        mappings = self._pv.get(frame)
        if mappings is None:
            return
        try:
            mappings.remove((pmap, vaddr))
        except ValueError:
            pass
        if not mappings:
            del self._pv[frame]

    def mappings_of(self, phys: int) -> list[tuple["Pmap", int]]:
        """All (pmap, vaddr) pairs currently mapping the frame at
        *phys* (a copy; safe to mutate the table while iterating)."""
        return list(self._pv.get(self._frame(phys), ()))

    def remove_all(self, phys: int) -> None:
        """``pmap_remove_all``: remove the frame from every pmap
        ("[pageout]")."""
        for pmap, vaddr in self.mappings_of(phys):
            pmap.remove(vaddr, vaddr + self.page_size)

    def copy_on_write(self, phys: int) -> None:
        """``pmap_copy_on_write``: revoke write access in every pmap
        ("[virtual copy of shared pages]")."""
        self.page_protect(phys, VMProt.READ | VMProt.EXECUTE)

    def page_protect(self, phys: int, prot: VMProt) -> None:
        """Lower the protection of every mapping of one frame."""
        if prot is VMProt.NONE:
            self.remove_all(phys)
            return
        for pmap, vaddr in self.mappings_of(phys):
            pmap.protect(vaddr, vaddr + self.page_size, prot)

    # ------------------------------------------------------------------
    # Physical page helpers (Table 3-3: pmap_zero_page, pmap_copy_page)
    # ------------------------------------------------------------------

    def zero_page(self, phys: int) -> None:
        """``pmap_zero_page``: zero-fill one frame."""
        self.machine.clock.charge(
            self.machine.costs.zero_cost(self.page_size))
        self.machine.physmem.zero_frame(self._frame(phys))

    def copy_page(self, src: int, dst: int) -> None:
        """``pmap_copy_page``: copy one frame."""
        self.machine.clock.charge(
            self.machine.costs.copy_cost(self.page_size))
        self.machine.physmem.copy_frame(self._frame(src), self._frame(dst))

    # ------------------------------------------------------------------
    # TLB shootdown (Section 5.2)
    # ------------------------------------------------------------------

    def shootdown(self, pmap: "Pmap", start: int, end: int,
                  force: bool = False) -> None:
        """Make a mapping change visible to every CPU's TLB.

        *force* overrides the LAZY strategy — used by the pageout path,
        which may never reuse a frame while any TLB can still reach it.
        """
        self.shootdowns += 1
        costs = self.machine.costs
        clock = self.machine.clock
        strategy = self.strategy
        if force and strategy is ShootdownStrategy.LAZY:
            strategy = ShootdownStrategy.IMMEDIATE
        # Plan first, then execute: an observer must see the window
        # open before any flush lands on any CPU.
        plan: list[tuple] = []
        for cpu in self.machine.cpus:
            if cpu.cpu_id not in pmap.cpus_tainted:
                continue
            if cpu.cpu_id == self.current_cpu_id:
                plan.append((cpu, "local"))
            elif strategy is ShootdownStrategy.IMMEDIATE:
                plan.append((cpu, "ipi"))
            elif strategy is ShootdownStrategy.DEFERRED:
                plan.append((cpu, "deferred"))
            else:
                plan.append((cpu, "lazy"))
        if self.events.active:
            self.events.emit(
                "pmap", "shootdown",
                pmap=pmap, start=start, end=end,
                strategy=strategy, declared=self.strategy, forced=force,
                actions=tuple((cpu.cpu_id, action)
                              for cpu, action in plan))
        def execute() -> None:
            for cpu, action in plan:

                def flush(cpu=cpu, pmap=pmap, start=start,
                          end=end) -> None:
                    clock.charge(costs.tlb_flush_entry_us)
                    cpu.tlb.invalidate_range(pmap, start, end)

                if action == "local":
                    flush()
                elif action == "ipi":
                    self.ipis_sent += 1
                    cpu.deliver_ipi(flush)
                elif action == "deferred":
                    self.deferred_flushes += 1
                    cpu.defer_flush(flush)
                # LAZY: temporary inconsistency is allowed; the entry
                # dies whenever that CPU next switches pmaps or takes
                # a flush.

        if self.events.active:
            # The stage span covers plan *execution* only (the
            # synchronous flush/IPI cost); the ``pmap/shootdown``
            # instant above stays first — the race detector's window
            # must open before any flush lands.
            with self.events.span("stage", "shootdown",
                                  cpus=len(plan)):
                execute()
        else:
            execute()
        if self.debug_hook is not None:
            self.debug_hook()

    def update(self) -> None:
        """``pmap_update``: bring the whole pmap system up to date —
        drain every deferred flush on every CPU now."""
        for cpu in self.machine.cpus:
            if cpu.has_deferred_flushes:
                cpu.timer_tick()
        if self.debug_hook is not None:
            self.debug_hook()


class Pmap(abc.ABC):
    """A physical address map: the machine-dependent mapping structure
    for one task (or the kernel).

    Concrete subclasses implement only the single-hardware-page hooks
    (``_hw_enter``/``_hw_remove``/``_hw_protect``/``_hw_lookup``); this
    base class handles Mach-page-to-hardware-page fan-out, pv-table
    maintenance, cost accounting, statistics and TLB shootdown, so each
    machine's module stays small — the paper measures the VAX pmap
    module at "approximately 6K bytes ... about the size of a device
    driver."
    """

    def __init__(self, system: PmapSystem, name: str = "") -> None:
        self.system = system
        self.machine = system.machine
        self.pmap_id = next(_pmap_ids)
        self.name = name or f"pmap{self.pmap_id}"
        self.ref_count = 1
        self.page_size = system.machine.page_size
        self.hw_page_size = system.machine.hw_page_size
        #: CPUs this pmap is currently active on.
        self.cpus_using: set[int] = set()
        #: CPUs whose TLBs may still hold entries of this pmap.
        self.cpus_tainted: set[int] = set()
        self.stats = PmapStats()

    # -- reference counting (pmap_reference / pmap_destroy) -------------

    def reference(self) -> "Pmap":
        """Take an additional reference; returns self."""
        self.ref_count += 1
        return self

    def destroy(self) -> None:
        """``pmap_destroy``: drop a reference; tear down at zero."""
        self.ref_count -= 1
        if self.ref_count <= 0:
            self.remove(0, self.machine.spec.va_limit)
            self._hw_destroy()

    # -- machine-dependent hooks -----------------------------------------

    @abc.abstractmethod
    def _hw_enter(self, vaddr: int, paddr: int, prot: VMProt,
                  wired: bool) -> None:
        """Install one hardware-page mapping in the MD structure."""

    @abc.abstractmethod
    def _hw_remove(self, vaddr: int) -> Optional[int]:
        """Remove one hardware-page mapping; returns the physical
        address it mapped, or None when no mapping existed."""

    @abc.abstractmethod
    def _hw_protect(self, vaddr: int, prot: VMProt) -> bool:
        """Change one mapping's protection; returns False when no
        mapping exists at *vaddr*."""

    @abc.abstractmethod
    def _hw_lookup(self, vaddr: int) -> Optional[tuple[int, VMProt]]:
        """(hardware-frame physical base, protection) or None."""

    @abc.abstractmethod
    def _hw_iter(self, start: int, end: int):
        """Yield the virtual addresses (hardware-page aligned) of every
        mapping this pmap holds inside [start, end).  Lets range
        operations touch only existing mappings instead of walking every
        page of a potentially huge (sparse) range."""

    def _hw_destroy(self) -> None:
        """Release machine-dependent storage (page tables etc.)."""

    # -- the exported interface (Table 3-3) ------------------------------

    def enter(self, vaddr: int, paddr: int, prot: VMProt,
              wired: bool = False) -> None:
        """``pmap_enter``: map one *Mach* page ("[page fault]").

        Fans out to as many hardware pages as the boot-time page size
        spans, maintains the pv table, and charges PTE-write costs.
        """
        self.stats.enters += 1
        events = self.machine.events
        if events.active:
            with events.span("pmap", "enter", pmap=self.name,
                             vaddr=vaddr):
                self._enter_one(vaddr, paddr, prot, wired)
        else:
            self._enter_one(vaddr, paddr, prot, wired)

    def _enter_one(self, vaddr: int, paddr: int, prot: VMProt,
                   wired: bool) -> None:
        self.remove(vaddr, vaddr + self.page_size, shoot=True)
        self._enter_mapping(vaddr, paddr, prot, wired)

    def _enter_mapping(self, vaddr: int, paddr: int, prot: VMProt,
                       wired: bool) -> None:
        """Write one Mach page's worth of hardware PTEs and maintain
        the pv table — the removal-free core shared by :meth:`enter`
        and :meth:`enter_batch`."""
        costs = self.machine.costs
        clock = self.machine.clock
        for off in range(0, self.page_size, self.hw_page_size):
            clock.charge(costs.pte_write_us)
            self._hw_enter(vaddr + off, paddr + off, prot, wired)
        self.system.pv_enter(self, vaddr, paddr)

    def enter_batch(self, mappings) -> None:
        """``pmap_enter_batch``: enter a *run* of consecutive Mach-page
        mappings in one pass.

        *mappings* is a sequence of ``(vaddr, paddr, prot, wired)``
        tuples for consecutive Mach pages.  Equivalent to calling
        :meth:`enter` once per tuple, except the whole run costs one
        removal sweep and — when old mappings were displaced — at most
        **one** TLB shootdown covering the run, instead of one per
        page.  This is the pmap half of the fault fast lane
        (:func:`repro.core.fault.vm_fault_batch`).
        """
        if not mappings:
            return
        self.stats.enters += len(mappings)
        start = mappings[0][0]
        end = mappings[-1][0] + self.page_size
        events = self.machine.events
        if events.active:
            with events.span("pmap", "enter_batch", pmap=self.name,
                             start=start, end=end,
                             pages=len(mappings)):
                self._enter_batch_body(mappings, start, end)
        else:
            self._enter_batch_body(mappings, start, end)

    def _enter_batch_body(self, mappings, start: int, end: int) -> None:
        # One displacement sweep for the whole run; the single
        # shootdown below covers every page removed here.
        removed_any = self.remove(start, end, shoot=False)
        for vaddr, paddr, prot, wired in mappings:
            self._enter_mapping(vaddr, paddr, prot, wired)
        if removed_any:
            self.system.shootdown(self, start, end)

    def remove(self, start: int, end: int, shoot: bool = True) -> bool:
        """``pmap_remove``: remove all mappings in [start, end)
        ("[Used in memory deallocation]").  Returns whether any mapping
        was removed (callers passing ``shoot=False`` owe a shootdown
        when it returns True)."""
        self.stats.removes += 1
        removed_any = False
        for va in list(self._hw_iter(trunc_page(start, self.hw_page_size),
                                     end)):
            paddr = self._hw_remove(va)
            if paddr is None:
                continue
            removed_any = True
            mach_va = trunc_page(va, self.page_size)
            mach_pa = trunc_page(paddr, self.page_size)
            self.system.pv_remove(self, mach_va, mach_pa)
        if removed_any and shoot:
            self.system.shootdown(self, start, end)
        return removed_any

    def protect(self, start: int, end: int, prot: VMProt) -> None:
        """``pmap_protect``: restrict protection on [start, end).

        A protection of NONE removes the mappings entirely.  Each
        existing mapping's protection is *intersected* with *prot*,
        never raised: permission increases are always granted lazily at
        fault time, and raising here could silently make a mapping more
        permissive than the machine-independent layer sanctions (e.g.
        re-arming write access on a copy-on-write-shared page, or
        granting execute where the map entry allows none).
        """
        if prot is VMProt.NONE:
            self.remove(start, end)
            return
        self.stats.protects += 1
        changed = False
        for va in list(self._hw_iter(trunc_page(start, self.hw_page_size),
                                     end)):
            hit = self._hw_lookup(va)
            if hit is None:
                continue
            lowered = hit[1] & prot
            if lowered == hit[1]:
                continue
            if self._hw_protect(va, lowered):
                changed = True
                self.machine.clock.charge(self.machine.costs.pte_write_us)
        if changed:
            # Lowering permissions must reach remote TLBs; the pageout
            # and COW paths depend on it.
            self.system.shootdown(self, start, end)

    def extract(self, vaddr: int) -> Optional[int]:
        """``pmap_extract``: convert virtual to physical (or None)."""
        hit = self._hw_lookup(vaddr)
        if hit is None:
            return None
        paddr, _ = hit
        return paddr + (vaddr % self.hw_page_size)

    def access(self, vaddr: int) -> bool:
        """``pmap_access``: report if virtual address is mapped."""
        return self._hw_lookup(vaddr) is not None

    def activate(self, thread, cpu) -> None:
        """``pmap_activate``: set pmap/thread to run on cpu.

        "Full information as to which processors are currently using
        which maps ... is provided to pmap from machine-independent
        code."
        """
        self.machine.clock.charge(self.machine.costs.context_switch_us)
        previous = cpu.active_pmap
        if previous is not None and previous is not self:
            previous.deactivate(cpu.active_thread, cpu)
        cpu.active_pmap = self
        cpu.active_thread = thread
        self.cpus_using.add(cpu.cpu_id)
        if self.system.strategy is ShootdownStrategy.LAZY:
            # The lazy strategy relies on flush-at-activate to bound
            # how long stale entries survive.
            cpu.tlb.invalidate_pmap(self)
        self.cpus_tainted.add(cpu.cpu_id)

    def deactivate(self, thread, cpu) -> None:
        """``pmap_deactivate``: map/thread are done on cpu.  The CPU's
        TLB may still hold entries (it stays *tainted*)."""
        self.cpus_using.discard(cpu.cpu_id)
        if cpu.active_pmap is self:
            cpu.active_pmap = None
            cpu.active_thread = None

    # -- optional interface (Table 3-4) -----------------------------------

    def copy(self, src_pmap: "Pmap", dst_addr: int, length: int,
             src_addr: int) -> None:
        """``pmap_copy``: optionally duplicate mappings from another
        pmap.  The default does nothing — mappings are rebuilt at fault
        time ("These routines need not perform any hardware function")."""

    def pageable(self, start: int, end: int, pageable: bool) -> None:
        """``pmap_pageable``: advise pageability of a region (no-op by
        default)."""

    # -- support used by the simulation ------------------------------------

    def hw_lookup(self, vaddr: int) -> Optional[tuple[int, VMProt]]:
        """Hardware-table walk used by the simulated MMU on TLB miss;
        returns (physical address for *vaddr*, protection) or None."""
        hit = self._hw_lookup(vaddr)
        if hit is None:
            return None
        paddr, prot = hit
        return paddr + (vaddr % self.hw_page_size), prot

    def translate_fault_type(self, vaddr: int,
                             reported: FaultType) -> FaultType:
        """Hook for fault-report errata (overridden by the NS32082
        pmap); returns the fault type MI code should believe."""
        return reported

    def forget(self, vaddr: int) -> None:
        """Throw away one Mach-page mapping for space/speed — allowed
        "at almost any time" by the MD/MI contract.  Counted separately
        from removes so benchmarks can observe GC behaviour."""
        self.stats.forgets += 1
        self.remove(vaddr, vaddr + self.page_size)

    def resident_mappings(self) -> int:
        """How many Mach-page mappings this pmap currently holds (for
        tests; derived from the pv table)."""
        count = 0
        for mappings in self.system._pv.values():
            count += sum(1 for pmap, _ in mappings if pmap is self)
        return count

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


# ---------------------------------------------------------------------------
# Module-level functions with the paper's exact spelling (Table 3-3/3-4).
# These are thin wrappers over the methods above, provided so code and
# documentation can read like the paper's interface listing.
# ---------------------------------------------------------------------------

def pmap_create(system: PmapSystem, pmap_class, name: str = "") -> Pmap:
    """``pmap_create``: create a new physical map."""
    return pmap_class(system, name=name)


def pmap_reference(pmap: Pmap) -> Pmap:
    """Table 3-3 pmap_reference: add a reference to a physical map."""
    return pmap.reference()


def pmap_destroy(pmap: Pmap) -> None:
    """Table 3-3 pmap_destroy: dereference, destroy when none remain."""
    pmap.destroy()


def pmap_enter(pmap: Pmap, v: int, p: int, prot: VMProt,
               wired: bool = False) -> None:
    """Table 3-3 pmap_enter: enter mapping [page fault]."""
    pmap.enter(v, p, prot, wired)


def pmap_enter_batch(pmap: Pmap, mappings) -> None:
    """Fast-lane extension of Table 3-3 pmap_enter: enter a run of
    consecutive mappings with one removal sweep and at most one
    shootdown [batched page fault]."""
    pmap.enter_batch(mappings)


def pmap_remove(pmap: Pmap, start: int, end: int) -> None:
    """Table 3-3 pmap_remove: remove a virtual range [memory deallocation]."""
    pmap.remove(start, end)


def pmap_remove_all(system: PmapSystem, phys: int) -> None:
    """Table 3-3 pmap_remove_all: remove a physical page from all maps [pageout]."""
    system.remove_all(phys)


def pmap_copy_on_write(system: PmapSystem, phys: int) -> None:
    """Table 3-3 pmap_copy_on_write: revoke write access in all maps."""
    system.copy_on_write(phys)


def pmap_protect(pmap: Pmap, start: int, end: int, prot: VMProt) -> None:
    """Table 3-3 pmap_protect: set protection on a range."""
    pmap.protect(start, end, prot)


def pmap_extract(pmap: Pmap, va: int) -> Optional[int]:
    """Table 3-3 pmap_extract: convert virtual to physical."""
    return pmap.extract(va)


def pmap_access(pmap: Pmap, va: int) -> bool:
    """Table 3-3 pmap_access: report if a virtual address is mapped."""
    return pmap.access(va)


def pmap_update(system: PmapSystem) -> None:
    """Table 3-3 pmap_update: bring the pmap system up to date."""
    system.update()


def pmap_activate(pmap: Pmap, thread, cpu) -> None:
    """Table 3-3 pmap_activate: set pmap/thread to run on a cpu."""
    pmap.activate(thread, cpu)


def pmap_deactivate(pmap: Pmap, thread, cpu) -> None:
    """Table 3-3 pmap_deactivate: map/thread are done on a cpu."""
    pmap.deactivate(thread, cpu)


def pmap_zero_page(system: PmapSystem, phys: int) -> None:
    """Table 3-3 pmap_zero_page: zero-fill a physical page."""
    system.zero_page(phys)


def pmap_copy_page(system: PmapSystem, src: int, dst: int) -> None:
    """Table 3-3 pmap_copy_page: copy a physical page."""
    system.copy_page(src, dst)


def pmap_copy(dst_pmap: Pmap, src_pmap: Pmap, dst_addr: int, length: int,
              src_addr: int) -> None:
    """Table 3-4 pmap_copy (optional): duplicate virtual mappings."""
    dst_pmap.copy(src_pmap, dst_addr, length, src_addr)


def pmap_pageable(pmap: Pmap, start: int, end: int, pageable: bool) -> None:
    """Table 3-4 pmap_pageable (optional): advise pageability."""
    pmap.pageable(start, end, pageable)
