"""National Semiconductor NS32082 pmap (Encore Multimax, Sequent
Balance).

Section 5.1 lists this MMU's problems, all modelled here or in the
machine spec:

* "Only 16 megabytes of virtual memory may be addressed per page table.
  This requirement is very restrictive in large systems, especially for
  the kernel's address space." — enforced as a hard limit in
  ``_hw_enter`` (the machine spec also clamps task map bounds).
* "Only 32 megabytes of physical memory may be addressed." — enforced
  here and by the machine spec's ``phys_limit``.
* "A chip bug apparently causes read-modify-write faults to always be
  reported as read faults.  Mach depends on the ability to detect write
  faults for proper copy-on-write fault handling." — the simulated MMU
  delivers the buggy report (see :mod:`repro.hw.mmu`); this pmap's
  ``translate_fault_type`` carries the workaround: a "read" fault taken
  on a page that is already mapped readable can only be a disguised
  write, so it is upgraded before the machine-independent fault handler
  sees it.

The mapping structure itself is a two-level page table (pointer table of
level-2 page tables), as on the real part.

Conformance to the MI contract (Tables 3-3/3-4: coverage, signatures,
shootdown-on-mutation, no reach-around imports) is verified statically
by ``repro.analysis.conformance`` on every ``repro check`` run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import FaultType, VMProt
from repro.pmap.interface import Pmap

MB = 1 << 20

#: Per-page-table virtual address limit.
VA_LIMIT = 16 * MB
#: Physical addressing limit of the chip.
PA_LIMIT = 32 * MB
#: Level-2 tables cover 64 KB each (128 PTEs of 512-byte pages).
L2_SPAN = 64 * 1024


class Ns32082Pmap(Pmap):
    """Two-level page table with the chip's limits and erratum."""

    def __init__(self, system, name: str = "") -> None:
        super().__init__(system, name)
        #: level-1 index -> {vpn -> (frame, prot, wired)}.
        self._l1: dict[int, dict[int, tuple[int, VMProt, bool]]] = {}
        self.rmw_upgrades = 0

    def _locate(self, vaddr: int) -> tuple[int, int]:
        return vaddr // L2_SPAN, vaddr // self.hw_page_size

    def _hw_enter(self, vaddr: int, paddr: int, prot: VMProt,
                  wired: bool) -> None:
        if vaddr >= VA_LIMIT:
            raise ValueError(
                f"NS32082 maps only {VA_LIMIT:#x} bytes of virtual "
                f"space; got {vaddr:#x}")
        if paddr >= PA_LIMIT:
            raise ValueError(
                f"NS32082 addresses only {PA_LIMIT:#x} bytes of "
                f"physical memory; got {paddr:#x}")
        l1_index, vpn = self._locate(vaddr)
        table = self._l1.get(l1_index)
        if table is None:
            self.machine.clock.charge(self.machine.costs.pt_page_alloc_us)
            table = {}
            self._l1[l1_index] = table
        frame = paddr - (paddr % self.hw_page_size)
        table[vpn] = (frame, prot, wired)

    def _hw_remove(self, vaddr: int) -> Optional[int]:
        l1_index, vpn = self._locate(vaddr)
        table = self._l1.get(l1_index)
        if table is None:
            return None
        entry = table.pop(vpn, None)
        if not table:
            del self._l1[l1_index]
        if entry is None:
            return None
        return entry[0]

    def _hw_protect(self, vaddr: int, prot: VMProt) -> bool:
        l1_index, vpn = self._locate(vaddr)
        table = self._l1.get(l1_index)
        if table is None or vpn not in table:
            return False
        frame, _, wired = table[vpn]
        table[vpn] = (frame, prot, wired)
        return True

    def _hw_lookup(self, vaddr: int) -> Optional[tuple[int, VMProt]]:
        l1_index, vpn = self._locate(vaddr)
        table = self._l1.get(l1_index)
        if table is None:
            return None
        entry = table.get(vpn)
        if entry is None:
            return None
        frame, prot, _ = entry
        return frame, prot

    def _hw_iter(self, start: int, end: int):
        first = start // self.hw_page_size
        last = (end + self.hw_page_size - 1) // self.hw_page_size
        for l1_index in sorted(self._l1):
            for vpn in sorted(self._l1[l1_index]):
                if first <= vpn < last:
                    yield vpn * self.hw_page_size

    def _hw_destroy(self) -> None:
        self._l1.clear()

    # -- the erratum workaround ---------------------------------------------

    def translate_fault_type(self, vaddr: int,
                             reported: FaultType) -> FaultType:
        """Undo the chip's read-modify-write misreporting.

        If the chip says READ but this pmap already holds a readable
        mapping at *vaddr*, a plain read could not have faulted: the
        access must have been the write half of a read-modify-write, so
        the machine-independent handler is told WRITE (this is what
        makes copy-on-write work at all on the Multimax and Balance).
        """
        if reported is FaultType.READ:
            hit = self._hw_lookup(vaddr)
            if hit is not None and hit[1].allows(VMProt.READ):
                self.rmw_upgrades += 1
                return FaultType.WRITE
        return reported
