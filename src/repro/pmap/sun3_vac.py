"""SUN 3/260-style pmap: segment MMU plus a virtually addressed cache.

The paper's conclusion notes that Mach runs on "the SUN 3 (including
the virtual-address-cached SUN ... and 280)".  Those machines put a
write-back cache *in front of* address translation, which creates the
classic alias problem: two virtual mappings of one physical page can
each hold (possibly dirty) cache lines, and neither the cache nor the
MMU will reconcile them.

The machine-dependent module is where this is handled — invisible to
machine-independent code, exactly as the paper's portability story
requires.  This pmap extends the plain SUN 3 pmap with the standard
VAC discipline:

* entering a mapping for a frame that is already mapped at a
  *different* virtual address first flushes the other alias's lines
  (write-back + invalidate), so at most one virtual window is ever
  live in the cache per frame;
* removing or write-protecting a mapping flushes its range, so dirty
  lines reach memory before the page is paged out or shared
  copy-on-write.

Flushes are charged per page on the machine clock and counted in
``vac_flushes`` so the overhead is measurable (see
``benchmarks/test_ablation_vac.py``).

Conformance to the MI contract (Tables 3-3/3-4: coverage, signatures,
shootdown-on-mutation, no reach-around imports) is verified statically
by ``repro.analysis.conformance`` on every ``repro check`` run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import VMProt, trunc_page
from repro.pmap.sun3 import Sun3Pmap


class VACState:
    """Machine-wide virtually-addressed-cache bookkeeping.

    Tracks, per physical frame, which (pmap, vaddr) window may hold
    lines in the cache ("the live alias").  The invariant the pmap
    discipline maintains: at most one live alias per frame.
    """

    #: Simulated cost of flushing one page's worth of cache lines.
    FLUSH_US_PER_PAGE = 75.0

    def __init__(self) -> None:
        #: frame -> (pmap, vaddr) of the alias allowed in the cache.
        self.live_alias: dict[int, tuple[object, int]] = {}
        self.flushes = 0

    def check_invariant(self) -> None:
        """Assert at most one live alias per frame."""
        seen: dict[int, tuple] = {}
        for frame, alias in self.live_alias.items():
            assert frame not in seen
            seen[frame] = alias


class Sun3VacPmap(Sun3Pmap):
    """SUN 3 with the write-back virtually addressed cache."""

    def __init__(self, system, name: str = "") -> None:
        super().__init__(system, name)
        self._vac: VACState = system.md_shared.setdefault(
            "sun3_vac", VACState())

    @property
    def vac(self) -> VACState:
        """The machine-wide virtually-addressed-cache state."""
        return self._vac

    @property
    def vac_flushes(self) -> int:
        """Cache flushes performed so far (machine-wide)."""
        return self._vac.flushes

    def _flush_alias(self, frame: int) -> None:
        """Write back and invalidate the currently live alias's lines
        for *frame*."""
        self._vac.flushes += 1
        self.machine.clock.charge(VACState.FLUSH_US_PER_PAGE)
        del self._vac.live_alias[frame]

    def _frame_of(self, paddr: int) -> int:
        return trunc_page(paddr, self.page_size)

    # -- the VAC discipline, hooked into the pmap operations -------------

    def enter(self, vaddr: int, paddr: int, prot: VMProt,
              wired: bool = False) -> None:
        """Map one Mach page, applying the VAC alias discipline first."""
        frame = self._frame_of(paddr)
        live = self._vac.live_alias.get(frame)
        if live is not None and live != (self, vaddr):
            # A different virtual window may hold this frame's lines:
            # flush it before the new alias can be used.
            self._flush_alias(frame)
        elif live == (self, vaddr):
            # Re-entering the same window (e.g. a protection change):
            # the cached lines stay valid, no flush needed.  Drop the
            # record so the remove() inside enter() does not flush.
            del self._vac.live_alias[frame]
        super().enter(vaddr, paddr, prot, wired)
        self._vac.live_alias[frame] = (self, vaddr)

    def _enter_batch_body(self, mappings, start: int, end: int) -> None:
        """The batched enter with the alias discipline applied.

        Same rules as :meth:`enter`, adapted to the base class's
        one-removal-sweep shape: re-entries of a frame's *own* window
        keep their lines (their records are dropped before the sweep
        so it does not flush them), and a frame arriving under a
        *different* window flushes the old alias before its PTEs are
        written.  Flush totals match the page-at-a-time path.
        """
        vac = self._vac
        for vaddr, paddr, _prot, _wired in mappings:
            frame = self._frame_of(paddr)
            if vac.live_alias.get(frame) == (self, vaddr):
                # Re-entering the same window: the cached lines stay
                # valid; drop the record so the removal sweep below
                # does not flush it.
                del vac.live_alias[frame]
        removed_any = self.remove(start, end, shoot=False)
        for vaddr, paddr, prot, wired in mappings:
            frame = self._frame_of(paddr)
            live = vac.live_alias.get(frame)
            if live is not None and live != (self, vaddr):
                self._flush_alias(frame)
            self._enter_mapping(vaddr, paddr, prot, wired)
            vac.live_alias[frame] = (self, vaddr)
        if removed_any:
            self.system.shootdown(self, start, end)

    def remove(self, start: int, end: int, shoot: bool = True) -> bool:
        # Write back any live lines for frames mapped in the range
        # before their mappings (and possibly the pages) go away.
        """Remove mappings, flushing live cache windows first."""
        for va in list(self._hw_iter(trunc_page(start,
                                                self.hw_page_size),
                                     end)):
            hit = self._hw_lookup(va)
            if hit is None:
                continue
            frame = self._frame_of(hit[0])
            if self._vac.live_alias.get(frame) == (
                    self, trunc_page(va, self.page_size)):
                self._flush_alias(frame)
        return super().remove(start, end, shoot)

    def protect(self, start: int, end: int, prot: VMProt) -> None:
        """Change protection, writing back dirty lines before COW downgrades."""
        if not prot.allows(VMProt.WRITE):
            # Downgrading to read-only (the COW path): dirty lines must
            # reach memory first, or a copy made from the frame would
            # miss them.
            for va in list(self._hw_iter(
                    trunc_page(start, self.hw_page_size), end)):
                hit = self._hw_lookup(va)
                if hit is None or not hit[1].allows(VMProt.WRITE):
                    continue
                frame = self._frame_of(hit[0])
                if self._vac.live_alias.get(frame) == (
                        self, trunc_page(va, self.page_size)):
                    self._flush_alias(frame)
        super().protect(start, end, prot)
