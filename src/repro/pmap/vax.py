"""VAX pmap: lazily constructed linear page tables.

Section 5.1: "Although, in theory, a full two gigabyte address space can
be allocated in user state to a VAX process, it is not always practical
to do so because of the large amount of linear page table space required
(8 megabytes). ... The solution chosen for Mach was to keep page tables
in physical memory, but only to construct those parts of the table which
were needed to actually map virtual to real addresses for pages
currently in use.  VAX page tables in Mach may be created and destroyed
as necessary to conserve space or improve runtime."

The VAX has two user regions — P0 (program, growing up from 0) and P1
(stack, growing down below 0x8000_0000) — each described by a linear
array of 4-byte PTEs covering 512-byte pages.  We model the array as a
sparse set of *page-table pages* (128 PTEs each); a PT page exists only
while it holds at least one valid PTE, and the peak count is exported so
the space-saving claim can be benchmarked
(``benchmarks/bench_ablation_vax_ptspace.py``).

Conformance to the MI contract (Tables 3-3/3-4: coverage, signatures,
shootdown-on-mutation, no reach-around imports) is verified statically
by ``repro.analysis.conformance`` on every ``repro check`` run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import VMProt
from repro.pmap.interface import Pmap

VAX_PTE_SIZE = 4
VAX_HW_PAGE = 512
#: PTEs per page-table page (one 512-byte page of 4-byte PTEs).
PTES_PER_PT_PAGE = VAX_HW_PAGE // VAX_PTE_SIZE

P0_BASE = 0x0000_0000
P1_LIMIT = 0x8000_0000
P0_LIMIT = 0x4000_0000


class VaxPmap(Pmap):
    """Sparse VAX page tables (P0/P1 regions)."""

    def __init__(self, system, name: str = "") -> None:
        super().__init__(system, name)
        #: pt-page index -> {slot -> (frame, prot, wired)}.
        self._pt_pages: dict[int, dict[int, tuple[int, VMProt, bool]]] = {}
        self.pt_pages_peak = 0

    # -- page-table geometry ------------------------------------------------

    def _locate(self, vaddr: int) -> tuple[int, int]:
        """(pt-page index, slot) for a virtual address."""
        vpn = vaddr // self.hw_page_size
        return vpn // PTES_PER_PT_PAGE, vpn % PTES_PER_PT_PAGE

    @property
    def pt_pages_resident(self) -> int:
        """PT pages currently wired in (simulated) physical memory."""
        return len(self._pt_pages)

    def pt_bytes(self) -> int:
        """Bytes of page-table space currently committed."""
        return len(self._pt_pages) * VAX_HW_PAGE

    @staticmethod
    def full_linear_pt_bytes(va_span: int) -> int:
        """What a traditional full linear page table would cost for a
        *va_span*-byte region (the paper's 8 MB for 2 GB figure)."""
        return (va_span // VAX_HW_PAGE) * VAX_PTE_SIZE

    # -- hardware hooks -------------------------------------------------------

    def _hw_enter(self, vaddr: int, paddr: int, prot: VMProt,
                  wired: bool) -> None:
        if vaddr >= P1_LIMIT:
            raise ValueError(
                f"{vaddr:#x} is in VAX system space; user pmaps map P0/P1")
        pt_index, slot = self._locate(vaddr)
        page = self._pt_pages.get(pt_index)
        if page is None:
            # Construct this part of the page table on demand.
            self.machine.clock.charge(self.machine.costs.pt_page_alloc_us)
            page = {}
            self._pt_pages[pt_index] = page
            self.pt_pages_peak = max(self.pt_pages_peak,
                                     len(self._pt_pages))
        frame = paddr - (paddr % self.hw_page_size)
        page[slot] = (frame, prot, wired)

    def _hw_remove(self, vaddr: int) -> Optional[int]:
        pt_index, slot = self._locate(vaddr)
        page = self._pt_pages.get(pt_index)
        if page is None:
            return None
        entry = page.pop(slot, None)
        if not page:
            # "destroyed as necessary to conserve space".
            del self._pt_pages[pt_index]
        if entry is None:
            return None
        return entry[0]

    def _hw_protect(self, vaddr: int, prot: VMProt) -> bool:
        pt_index, slot = self._locate(vaddr)
        page = self._pt_pages.get(pt_index)
        if page is None or slot not in page:
            return False
        frame, _, wired = page[slot]
        page[slot] = (frame, prot, wired)
        return True

    def _hw_lookup(self, vaddr: int) -> Optional[tuple[int, VMProt]]:
        pt_index, slot = self._locate(vaddr)
        page = self._pt_pages.get(pt_index)
        if page is None:
            return None
        entry = page.get(slot)
        if entry is None:
            return None
        frame, prot, _ = entry
        return frame, prot

    def _hw_iter(self, start: int, end: int):
        first_vpn = start // self.hw_page_size
        last_vpn = (end + self.hw_page_size - 1) // self.hw_page_size
        first_pt = first_vpn // PTES_PER_PT_PAGE
        last_pt = last_vpn // PTES_PER_PT_PAGE
        for pt_index in sorted(self._pt_pages):
            if pt_index < first_pt or pt_index > last_pt:
                continue
            page = self._pt_pages[pt_index]
            base_vpn = pt_index * PTES_PER_PT_PAGE
            for slot in sorted(page):
                vpn = base_vpn + slot
                if first_vpn <= vpn < last_vpn:
                    yield vpn * self.hw_page_size

    def _hw_destroy(self) -> None:
        self._pt_pages.clear()
