"""Machine-dependent physical maps — one module per MMU architecture."""

from repro.pmap.generic import GenericPmap
from repro.pmap.interface import (
    Pmap,
    PmapStats,
    PmapSystem,
    ShootdownStrategy,
    pmap_access,
    pmap_activate,
    pmap_copy,
    pmap_copy_on_write,
    pmap_copy_page,
    pmap_create,
    pmap_deactivate,
    pmap_destroy,
    pmap_enter,
    pmap_extract,
    pmap_pageable,
    pmap_protect,
    pmap_reference,
    pmap_remove,
    pmap_remove_all,
    pmap_update,
    pmap_zero_page,
)
from repro.pmap.ns32082 import Ns32082Pmap
from repro.pmap.registry import (
    pmap_class_for,
    register_pmap,
    registered_pmaps,
)
from repro.pmap.rt_pc import RtPcPmap
from repro.pmap.sun3 import Sun3Pmap
from repro.pmap.sun3_vac import Sun3VacPmap
from repro.pmap.vax import VaxPmap

__all__ = [
    "GenericPmap", "Ns32082Pmap", "Pmap", "PmapStats", "PmapSystem",
    "RtPcPmap", "ShootdownStrategy", "Sun3Pmap", "Sun3VacPmap",
    "VaxPmap",
    "pmap_access", "pmap_activate", "pmap_class_for", "pmap_copy",
    "pmap_copy_on_write", "pmap_copy_page", "pmap_create",
    "pmap_deactivate", "pmap_destroy", "pmap_enter", "pmap_extract",
    "pmap_pageable", "pmap_protect", "pmap_reference", "pmap_remove",
    "pmap_remove_all", "pmap_update", "pmap_zero_page", "register_pmap",
    "registered_pmaps",
]
