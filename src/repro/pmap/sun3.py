"""SUN 3 pmap: segment maps and hardware contexts.

Section 5.1: "In the case of the SUN 3 a combination of segments and
page tables are used to create and manage per-task address maps up to
256 megabytes each.  The use of segments and page tables make it
possible to reasonably implement sparse addressing, but only 8 such
contexts may exist at any one time.  If there are more than 8 active
tasks, they compete for contexts, introducing additional page faults as
on the RT."

The SUN 3 MMU's mapping RAM holds translations only for pmaps that own
one of the (typically 8) hardware contexts.  A pmap without a context
has *no* hardware mappings; giving its context to another task wipes its
translations, so its pages must refault in.  ``context_steals`` counts
those evictions for the Section 5.1 ablation benchmark.

Conformance to the MI contract (Tables 3-3/3-4: coverage, signatures,
shootdown-on-mutation, no reach-around imports) is verified statically
by ``repro.analysis.conformance`` on every ``repro check`` run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import VMProt
from repro.pmap.interface import Pmap

#: Virtual bytes covered by one segment map entry on the SUN 3 (128 KB).
SEGMENT_SPAN = 128 * 1024


class ContextPool:
    """The machine's hardware MMU contexts, allocated LRU."""

    def __init__(self, ncontexts: int) -> None:
        if ncontexts < 1:
            raise ValueError("need at least one MMU context")
        self.ncontexts = ncontexts
        #: LRU-ordered list of pmaps owning contexts (front = oldest).
        self.owners: list["Sun3Pmap"] = []
        self.context_steals = 0

    def acquire(self, pmap: "Sun3Pmap") -> None:
        """Give *pmap* a context, stealing the least recently used one
        when all are taken."""
        if pmap in self.owners:
            self.owners.remove(pmap)
            self.owners.append(pmap)
            return
        if len(self.owners) >= self.ncontexts:
            victim = self.owners.pop(0)
            self.context_steals += 1
            victim._lose_context()
        self.owners.append(pmap)
        pmap._has_context = True

    def release(self, pmap: "Sun3Pmap") -> None:
        """Give up this pmap's context, if it holds one."""
        if pmap in self.owners:
            self.owners.remove(pmap)
        pmap._has_context = False


class Sun3Pmap(Pmap):
    """Segment-mapped per-context translations."""

    def __init__(self, system, name: str = "") -> None:
        super().__init__(system, name)
        ncontexts = system.machine.spec.mmu_contexts or 8
        self._pool: ContextPool = system.md_shared.setdefault(
            "sun3_contexts", ContextPool(ncontexts))
        self._has_context = False
        #: segment index -> {vpn -> (frame, prot, wired)}.
        self._segments: dict[int, dict[int, tuple[int, VMProt, bool]]] = {}
        self.segments_loaded = 0

    # -- context management ---------------------------------------------------

    def _lose_context(self) -> None:
        """Called by the pool when another pmap steals this context:
        every hardware translation of this pmap evaporates."""
        self._has_context = False
        # Drop mappings through the normal remove path so the pv table
        # and remote TLBs stay consistent (the mappings are hardware
        # state that just ceased to exist).
        for segment in list(self._segments.values()):
            for vpn in list(segment):
                self.forget(vpn * self.hw_page_size)
        self._segments.clear()

    def _ensure_context(self) -> None:
        if not self._has_context:
            self.machine.clock.charge(self.machine.costs.segment_load_us)
            self._pool.acquire(self)

    def activate(self, thread, cpu) -> None:
        """Run on a CPU (acquiring an MMU context first)."""
        super().activate(thread, cpu)
        # Running on a CPU requires a hardware context.
        self._ensure_context()

    # -- geometry ---------------------------------------------------------------

    def _locate(self, vaddr: int) -> tuple[int, int]:
        return vaddr // SEGMENT_SPAN, vaddr // self.hw_page_size

    # -- hardware hooks ----------------------------------------------------------

    def _hw_enter(self, vaddr: int, paddr: int, prot: VMProt,
                  wired: bool) -> None:
        self._ensure_context()
        seg_index, vpn = self._locate(vaddr)
        segment = self._segments.get(seg_index)
        if segment is None:
            self.machine.clock.charge(self.machine.costs.segment_load_us)
            self.segments_loaded += 1
            segment = {}
            self._segments[seg_index] = segment
        frame = paddr - (paddr % self.hw_page_size)
        segment[vpn] = (frame, prot, wired)

    def _hw_remove(self, vaddr: int) -> Optional[int]:
        seg_index, vpn = self._locate(vaddr)
        segment = self._segments.get(seg_index)
        if segment is None:
            return None
        entry = segment.pop(vpn, None)
        if not segment:
            del self._segments[seg_index]
        if entry is None:
            return None
        return entry[0]

    def _hw_protect(self, vaddr: int, prot: VMProt) -> bool:
        seg_index, vpn = self._locate(vaddr)
        segment = self._segments.get(seg_index)
        if segment is None or vpn not in segment:
            return False
        frame, _, wired = segment[vpn]
        segment[vpn] = (frame, prot, wired)
        return True

    def _hw_lookup(self, vaddr: int) -> Optional[tuple[int, VMProt]]:
        if not self._has_context:
            # No context, no hardware translations: the access faults
            # and the fault path (pmap_enter) re-acquires a context.
            return None
        seg_index, vpn = self._locate(vaddr)
        segment = self._segments.get(seg_index)
        if segment is None:
            return None
        entry = segment.get(vpn)
        if entry is None:
            return None
        frame, prot, _ = entry
        return frame, prot

    def _hw_iter(self, start: int, end: int):
        first = start // self.hw_page_size
        last = (end + self.hw_page_size - 1) // self.hw_page_size
        for seg_index in sorted(self._segments):
            for vpn in sorted(self._segments[seg_index]):
                if first <= vpn < last:
                    yield vpn * self.hw_page_size

    def _hw_destroy(self) -> None:
        self._pool.release(self)
        self._segments.clear()
