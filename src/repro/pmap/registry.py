"""Name -> pmap-class registry.

Machine specs name their MMU model (``pmap_name``); the kernel resolves
it here at boot.  Porting Mach to a new architecture in this
reproduction is exactly the paper's recipe: implement one
:class:`~repro.pmap.interface.Pmap` subclass and register it (see
``examples/port_to_new_mmu.py``).
"""

from __future__ import annotations

from typing import Type

from repro.pmap.generic import GenericPmap
from repro.pmap.interface import Pmap
from repro.pmap.ns32082 import Ns32082Pmap
from repro.pmap.rt_pc import RtPcPmap
from repro.pmap.sun3 import Sun3Pmap
from repro.pmap.sun3_vac import Sun3VacPmap
from repro.pmap.vax import VaxPmap

_REGISTRY: dict[str, Type[Pmap]] = {
    "generic": GenericPmap,
    "vax": VaxPmap,
    "rt_pc": RtPcPmap,
    "sun3": Sun3Pmap,
    "sun3_vac": Sun3VacPmap,
    "ns32082": Ns32082Pmap,
}


def register_pmap(name: str, pmap_class: Type[Pmap],
                  replace: bool = False) -> None:
    """Register a pmap implementation under *name*."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"pmap {name!r} already registered")
    if not (isinstance(pmap_class, type) and issubclass(pmap_class, Pmap)):
        raise TypeError(f"{pmap_class!r} is not a Pmap subclass")
    _REGISTRY[name] = pmap_class


def pmap_class_for(name: str) -> Type[Pmap]:
    """Resolve a machine spec's ``pmap_name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no pmap registered for {name!r}; known: "
            f"{sorted(_REGISTRY)}") from None


def registered_pmaps() -> dict[str, Type[Pmap]]:
    """A copy of the name -> class registry."""
    return dict(_REGISTRY)
