"""TLB-only pmap.

Section 5: "In principle, Mach needs no in-memory hardware-defined data
structure to manage virtual memory.  Machines which provide only an
easily manipulated TLB could be accommodated by Mach and would need
little code to be written for the pmap module.  In fact, a version of
Mach has already run on a simulator for the IBM RP3 which assumed only
TLB hardware support."

This is that pmap: a bare software translation table standing in for
whatever structure refills the TLB.  It is also the reference
implementation the other pmap modules are tested against.

Conformance to the MI contract (Tables 3-3/3-4: coverage, signatures,
shootdown-on-mutation, no reach-around imports) is verified statically
by ``repro.analysis.conformance`` on every ``repro check`` run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import VMProt
from repro.pmap.interface import Pmap


class GenericPmap(Pmap):
    """Software map: hardware-page VPN -> (frame, protection, wired)."""

    def __init__(self, system, name: str = "") -> None:
        super().__init__(system, name)
        self._table: dict[int, tuple[int, VMProt, bool]] = {}

    def _vpn(self, vaddr: int) -> int:
        return vaddr // self.hw_page_size

    def _hw_enter(self, vaddr: int, paddr: int, prot: VMProt,
                  wired: bool) -> None:
        frame = paddr - (paddr % self.hw_page_size)
        self._table[self._vpn(vaddr)] = (frame, prot, wired)

    def _hw_remove(self, vaddr: int) -> Optional[int]:
        entry = self._table.pop(self._vpn(vaddr), None)
        if entry is None:
            return None
        return entry[0]

    def _hw_protect(self, vaddr: int, prot: VMProt) -> bool:
        vpn = self._vpn(vaddr)
        entry = self._table.get(vpn)
        if entry is None:
            return False
        frame, _, wired = entry
        self._table[vpn] = (frame, prot, wired)
        return True

    def _hw_lookup(self, vaddr: int) -> Optional[tuple[int, VMProt]]:
        entry = self._table.get(self._vpn(vaddr))
        if entry is None:
            return None
        frame, prot, _ = entry
        return frame, prot

    def _hw_iter(self, start: int, end: int):
        first = start // self.hw_page_size
        last = (end + self.hw_page_size - 1) // self.hw_page_size
        if len(self._table) < (last - first):
            for vpn in sorted(self._table):
                if first <= vpn < last:
                    yield vpn * self.hw_page_size
        else:
            for vpn in range(first, last):
                if vpn in self._table:
                    yield vpn * self.hw_page_size

    def _hw_destroy(self) -> None:
        self._table.clear()

    def copy(self, src_pmap: "GenericPmap", dst_addr: int, length: int,
             src_addr: int) -> None:
        """Table 3-4 ``pmap_copy`` — the *optional* optimization: copy
        the source pmap's valid mappings so a freshly forked child need
        not fault each one back in.

        Only safe because a fork has already write-protected every
        source mapping (copy-on-write); the copied translations carry
        the same reduced permissions, so the first child *write* still
        faults exactly as required.
        """
        if not isinstance(src_pmap, GenericPmap):
            return
        costs = self.machine.costs
        delta = dst_addr - src_addr
        for va in list(src_pmap._hw_iter(src_addr, src_addr + length)):
            hit = src_pmap._hw_lookup(va)
            if hit is None:
                continue
            frame, prot = hit
            if prot.allows(VMProt.WRITE):
                # Never duplicate a writable mapping: COW correctness
                # depends on the first write faulting.
                continue
            self.machine.clock.charge(costs.pte_write_us)
            self._hw_enter(va + delta, frame, prot, wired=False)
            mach_va = (va + delta) - (va + delta) % self.page_size
            mach_pa = frame - frame % self.page_size
            self.system.pv_enter(self, mach_va, mach_pa)
