"""IBM RT PC pmap: a single machine-wide inverted page table.

Section 5.1: "The IBM RT PC does not use per-task page tables.  Instead
it uses a single inverted page table which describes which virtual
address is mapped to each physical address. ... One drawback of the RT,
however, is that it allows only one valid mapping for each physical
page, making it impossible to share pages without triggering faults.
... physical pages shared by multiple tasks can cause extra page faults,
with each page being mapped and then remapped for the last task which
referenced it.  The effect is that Mach treats the inverted page table
as a kind of large, in memory cache for the RT's translation lookaside
buffer."

The inverted table is shared by every pmap of the machine (kept in
``PmapSystem.md_shared``); installing a mapping for a frame that is
already mapped by another (pmap, vaddr) *steals* that mapping — the
loser refaults on its next touch.  ``alias_steals`` counts these events
for the Section 5.1 ablation benchmark.

Conformance to the MI contract (Tables 3-3/3-4: coverage, signatures,
shootdown-on-mutation, no reach-around imports) is verified statically
by ``repro.analysis.conformance`` on every ``repro check`` run.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constants import VMProt, trunc_page
from repro.pmap.interface import Pmap


class InvertedPageTable:
    """The RT's single hardware mapping structure.

    * ``frames``: hardware frame -> (pmap, vaddr, prot, wired) — at most
      one virtual mapping per physical page, by construction.
    * ``hash``: (pmap id, vpn) -> frame — the hashed lookup path the RT
      hardware uses for address translation.
    """

    def __init__(self) -> None:
        self.frames: dict[int, tuple[object, int, VMProt, bool]] = {}
        self.hash: dict[tuple[int, int], int] = {}
        self.alias_steals = 0


class RtPcPmap(Pmap):
    """One task's view of the shared inverted page table."""

    def __init__(self, system, name: str = "") -> None:
        super().__init__(system, name)
        self._ipt = system.md_shared.setdefault(
            "rt_ipt", InvertedPageTable())

    @property
    def ipt(self) -> InvertedPageTable:
        """The machine-wide inverted page table."""
        return self._ipt

    def _vpn(self, vaddr: int) -> int:
        return vaddr // self.hw_page_size

    def _vbase(self, vaddr: int) -> int:
        return vaddr - (vaddr % self.hw_page_size)

    def _hw_enter(self, vaddr: int, paddr: int, prot: VMProt,
                  wired: bool) -> None:
        frame = paddr - (paddr % self.hw_page_size)
        existing = self._ipt.frames.get(frame)
        if existing is not None:
            old_pmap, old_vaddr, _, _ = existing
            if old_pmap is not self or old_vaddr != vaddr:
                # Only one valid mapping per physical page: steal it.
                # The whole Mach page of the loser goes (keeps the
                # machine-independent pv table consistent) — the loser
                # simply refaults, as on the real hardware.
                self._ipt.alias_steals += 1
                old_mach_va = trunc_page(old_vaddr, old_pmap.page_size)
                old_pmap.forget(old_mach_va)
        self._ipt.frames[frame] = (self, vaddr, prot, wired)
        self._ipt.hash[(self.pmap_id, self._vpn(vaddr))] = frame

    def _hw_remove(self, vaddr: int) -> Optional[int]:
        vaddr = self._vbase(vaddr)
        frame = self._ipt.hash.pop((self.pmap_id, self._vpn(vaddr)), None)
        if frame is None:
            return None
        entry = self._ipt.frames.get(frame)
        if entry is not None and entry[0] is self and entry[1] == vaddr:
            del self._ipt.frames[frame]
        return frame

    def _hw_protect(self, vaddr: int, prot: VMProt) -> bool:
        vaddr = self._vbase(vaddr)
        frame = self._ipt.hash.get((self.pmap_id, self._vpn(vaddr)))
        if frame is None:
            return False
        entry = self._ipt.frames.get(frame)
        if entry is None or entry[0] is not self or entry[1] != vaddr:
            return False
        pmap, va, _, wired = entry
        self._ipt.frames[frame] = (pmap, va, prot, wired)
        return True

    def _hw_lookup(self, vaddr: int) -> Optional[tuple[int, VMProt]]:
        vaddr = self._vbase(vaddr)
        frame = self._ipt.hash.get((self.pmap_id, self._vpn(vaddr)))
        if frame is None:
            return None
        entry = self._ipt.frames.get(frame)
        if entry is None or entry[0] is not self or entry[1] != vaddr:
            return None
        _, _, prot, _ = entry
        return frame, prot

    def _hw_iter(self, start: int, end: int):
        first = start // self.hw_page_size
        last = (end + self.hw_page_size - 1) // self.hw_page_size
        mine = [vpn for (pid, vpn) in self._ipt.hash
                if pid == self.pmap_id and first <= vpn < last]
        for vpn in sorted(mine):
            yield vpn * self.hw_page_size

    def _hw_destroy(self) -> None:
        stale = [key for key in self._ipt.hash if key[0] == self.pmap_id]
        for key in stale:
            frame = self._ipt.hash.pop(key)
            entry = self._ipt.frames.get(frame)
            if entry is not None and entry[0] is self:
                del self._ipt.frames[frame]
