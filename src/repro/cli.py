"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``machines`` — list the simulated machine presets and their MMU
  parameters;
* ``demo [--machine NAME]`` — run the core-mechanism walkthrough
  (allocate, fault, COW fork, sharing, statistics) on a chosen machine;
* ``bench [--table {7-1,7-2}] [--quick]`` — regenerate the paper's
  evaluation tables; ``bench --json [--out FILE]`` instead times the
  simulator's own hot paths (forget/refault fault microbench +
  invariant-sweep wall-clock) and writes a JSON report;
* ``fault-trace [--machine NAME]`` — narrate every step of a single
  copy-on-write fault, for teaching (including the event-bus span tree
  of the fault);
* ``trace [--workload NAME] [--format {chrome,summary,spans}]
  [--quick] [--out FILE]`` — record a workload on the instrumentation
  bus (:mod:`repro.obs`) and export it: Chrome ``trace_event`` JSON
  (loadable in Perfetto / ``chrome://tracing``, one lane per simulated
  CPU plus daemon/pager lanes), a derived-metrics summary, or the
  nested span tree with a top-N self-time profile;
* ``storm [--arch NAME] [--tasks N] [--pages N] [--rounds N]
  [--seed N] [--quick] [--json] [--out FILE] [--trace-out FILE]`` —
  the fault-storm load generator: ramp N concurrent faulting tasks on
  an overcommitted machine across the pmap arch matrix and report the
  fault-latency distribution (p50/p95/p99/p999) with per-pipeline-
  stage attribution from :class:`repro.obs.FaultTelemetry`;
  ``--trace-out`` exports the worst-percentile faults as Chrome
  trace_event JSON;
* ``check [--lint-only] [--report FILE] [--no-cache]`` — run the
  static analyses over the source tree (MD/MI layering lint,
  concurrency lint, and the five dataflow passes: resource lifecycle,
  pmap MI-contract conformance, error-path completeness, determinism,
  interprocedural typestate), then the runtime invariant sweeps on
  all five pmap architectures (see :mod:`repro.analysis`); results
  are cached under ``.repro-cache/`` so unchanged modules are not
  re-analyzed (``--no-cache`` disables); ``--report`` writes a
  versioned JSON report; a crashing analysis is reported as an
  analysis error, never as a clean tree;
* ``faultsweep [--quick] [--seed N]`` — the fault-injection survival
  matrix: errant pagers, flaky disks and lossy IPC against every pmap
  architecture (see :mod:`repro.inject`);
* ``races [--quick] [--seed N] [--explore]`` — the concurrency storm:
  seeded-random schedules over fork+COW, pageout-pressure and
  shootdown workloads with the happens-before race detector armed, on
  every pmap architecture x shootdown strategy; ``--explore`` runs a
  bounded DFS over the schedules of a small shootdown workload (see
  :mod:`repro.analysis.race`).
"""

from __future__ import annotations

import argparse
import sys

from repro import hw
from repro.core.constants import FaultType, VMInherit
from repro.core.kernel import MachKernel

KB = 1024


def cmd_machines(args: argparse.Namespace) -> int:
    """``repro machines``: list the simulated machines."""
    header = (f"{'machine':<20} {'pmap':<9} {'hw page':>8} "
              f"{'mach page':>10} {'cpus':>5} {'memory':>8} "
              f"{'va limit':>10}")
    print(header)
    print("-" * len(header))
    for spec in hw.ALL_SPECS:
        print(f"{spec.name:<20} {spec.pmap_name:<9} "
              f"{spec.hw_page_size:>8} {spec.default_page_size:>10} "
              f"{spec.ncpus:>5} {spec.memory_bytes // (1 << 20):>6}MB "
              f"{spec.va_limit // (1 << 20):>8}MB")
    return 0


def _resolve_machine(name: str):
    try:
        return hw.spec_by_name(name)
    except KeyError:
        choices = ", ".join(s.name for s in hw.ALL_SPECS)
        print(f"unknown machine {name!r}; choose from: {choices}",
              file=sys.stderr)
        raise SystemExit(2)


def cmd_demo(args: argparse.Namespace) -> int:
    """``repro demo``: run the core-mechanism walkthrough."""
    spec = _resolve_machine(args.machine)
    kernel = MachKernel(spec)
    print(f"booted {spec.name}: {kernel.machine.hw_page_size}-byte "
          f"hardware pages, {kernel.page_size}-byte Mach pages, "
          f"{len(kernel.machine.cpus)} cpu(s), "
          f"{spec.pmap_name!r} pmap")

    task = kernel.task_create(name="demo")
    addr = task.vm_allocate(64 * KB)
    task.write(addr, b"machine independent memory")
    print(f"\nallocated 64K at {addr:#x}; first write took "
          f"{kernel.stats.faults} fault(s)")

    child = task.fork()
    child.write(addr, b"COPY-ON-WRITE")
    print(f"after COW fork + child write: parent reads "
          f"{task.read(addr, 7)!r}, child reads "
          f"{child.read(addr, 13)!r}")

    shared = task.vm_allocate(8 * KB)
    task.vm_inherit(shared, 8 * KB, VMInherit.SHARE)
    sharer = task.fork()
    sharer.write(shared, b"shared pages")
    print(f"after SHARE fork + child write: parent reads "
          f"{task.read(shared, 12)!r}")

    print("\n" + kernel.vm_statistics().describe())
    print(f"\nsimulated: {kernel.clock.cpu_ms:.2f} ms cpu / "
          f"{kernel.clock.elapsed_ms:.2f} ms elapsed")
    return 0


def cmd_fault_trace(args: argparse.Namespace) -> int:
    """``repro fault-trace``: narrate one COW fault."""
    spec = _resolve_machine(args.machine)
    kernel = MachKernel(spec)
    task = kernel.task_create(name="tracer")
    page = kernel.page_size

    print(f"machine: {spec.name} ({spec.pmap_name} pmap)\n")
    addr = task.vm_allocate(4 * page)
    print(f"1. vm_allocate(4 pages) -> {addr:#x}")
    found, entry = task.vm_map.lookup_entry(addr)
    print(f"   map entry: {entry!r}")
    print("   note: no memory object yet (lazy zero fill)\n")

    task.write(addr, b"A")
    found, entry = task.vm_map.lookup_entry(addr)
    print(f"2. first write -> zero-fill fault")
    print(f"   object materialized: {entry.vm_object!r}")
    print(f"   pmap now maps it: phys "
          f"{task.pmap.extract(addr):#x}\n")

    child = task.fork()
    found, centry = child.vm_map.lookup_entry(addr)
    print(f"3. fork -> symmetric copy-on-write")
    print(f"   parent entry: {entry!r}")
    print(f"   child  entry: {centry!r}\n")

    from repro.obs import EventRecorder, build_spans, render_spans

    with EventRecorder(kernel.events) as recorder:
        outcome = kernel.fault(child, addr, FaultType.WRITE)
    found, centry = child.vm_map.lookup_entry(addr)
    print(f"4. child write fault:")
    print(f"   shadow created: {outcome.shadow_created}, "
          f"page copied: {outcome.cow_copied}")
    print(f"   child entry now: {centry!r}")
    print(f"   shadow chain: "
          f"{[f'#{o.object_id}' for o in centry.vm_object.chain()]}")
    print(f"\n5. the same fault as the event bus saw it:")
    for line in render_spans(build_spans(recorder.events)).splitlines():
        print(f"   {line}")
    print(f"\nstatistics: {kernel.stats!r}")
    return 0


def _trace_workload_demo(kernel, quick: bool) -> None:
    """The fork+COW walkthrough, scheduled over every CPU, plus a
    memory-mapped file (fault -> pager call -> disk I/O spans) and one
    pageout-daemon pass — enough traffic to light up every lane."""
    from repro.fs.filesystem import FileSystem
    from repro.pager.vnode_pager import map_file
    from repro.sched.scheduler import Scheduler

    page = kernel.page_size
    npages = 2 if quick else 6
    sched = Scheduler(kernel)

    parent = kernel.task_create(name="cow-parent")
    addr = parent.vm_allocate(npages * page)
    for off in range(0, npages * page, page):
        parent.write(addr + off, bytes([off // page + 1]))
    tasks = [parent]
    while len(tasks) < len(kernel.machine.cpus):
        tasks.append(tasks[-1].fork())

    def writer(ctx):
        for off in range(0, npages * page, page):
            ctx.write(addr + off, bytes([65 + off // page]))
            yield
            assert ctx.read(addr + off, 1) == bytes([65 + off // page])
            yield

    for task in tasks:
        sched.spawn(task, writer, name=f"{task.name}-w")
    sched.run()

    # A memory-mapped file: faults route through the vnode pager to
    # the simulated disk, nesting fault -> pager call -> disk read.
    fs = FileSystem(kernel.machine, nbufs=32)
    nblocks = 1 if quick else 3
    fs.write("/trace/data", b"mach" * (nblocks * fs.block_size // 4))
    fs.buffer_cache.sync()
    reader = kernel.task_create(name="file-reader")
    maddr = map_file(kernel, reader, fs, "/trace/data")
    for off in range(0, nblocks * fs.block_size, page):
        reader.read(maddr + off, 4)

    # A user-state pager: its server loop runs on the "pager" lane.
    from repro.pager.base import ExternalPagerAdapter, \
        SimpleReadWritePager
    adapter = ExternalPagerAdapter(
        SimpleReadWritePager(b"EXT!" * (page // 4)), kernel=kernel)
    ext = kernel.task_create(name="ext-reader")
    eaddr = kernel.vm_allocate_with_pager(ext, page, adapter)
    ext.read(eaddr, 4)

    kernel.pageout_daemon.run()


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: record a workload on the bus and export it."""
    from repro.obs import (
        EventRecorder,
        MetricsRegistry,
        build_spans,
        chrome_trace_json,
        profile,
        render_spans,
        validate_chrome_trace,
    )

    spec = _resolve_machine(args.machine)
    kernel = MachKernel(spec)
    recorder = EventRecorder(kernel.events)
    metrics = MetricsRegistry().attach(kernel)
    try:
        _trace_workload_demo(kernel, quick=args.quick)
    finally:
        recorder.detach()
        metrics.detach()
    events = recorder.events

    if args.format == "chrome":
        text = chrome_trace_json(events)
        problems = validate_chrome_trace(text)
        if problems:
            for problem in problems:
                print(f"invalid trace: {problem}", file=sys.stderr)
            return 1
    elif args.format == "spans":
        text = (render_spans(build_spans(events))
                + "\n\n" + profile(events))
    else:
        text = (metrics.summary() + "\n\n" + profile(events)
                + f"\n\n{len(events)} events on the bus"
                + (f" ({recorder.dropped} dropped)" if recorder.dropped
                   else ""))

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(events)} events to {args.out} "
              f"({args.format})")
    else:
        print(text)
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    """``repro show``: run a small workload and render the kernel's
    data structures as ASCII diagrams."""
    from repro.viz import render_queues, render_task

    spec = _resolve_machine(args.machine)
    kernel = MachKernel(spec)
    task = kernel.task_create(name="demo")
    addr = task.vm_allocate(4 * kernel.page_size)
    task.write(addr, b"rendered")
    shared = task.vm_allocate(kernel.page_size)
    task.vm_inherit(shared, kernel.page_size, VMInherit.SHARE)
    child = task.fork()
    child.write(addr, b"COW!")
    child.write(shared, b"shared")

    print(render_task(task))
    print()
    print(render_task(child))
    print()
    print("resident page queues:")
    print(render_queues(kernel))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: regenerate evaluation tables, or (``--json``)
    time the simulator's own hot paths."""
    if args.json:
        import json
        import os

        from repro.bench import run_perf_bench
        from repro.bench.compare import compare_reports, \
            format_comparison, load_report

        from repro.bench.perfbench import DEFAULT_SEED

        seed = DEFAULT_SEED if args.seed is None else args.seed
        payload = run_perf_bench(quick=args.quick, seed=seed)
        out = args.out or "BENCH_9.json"
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        fault = payload["fault_microbench"]
        scalar = payload["fault_microbench_scalar"]
        sweep = payload["invariant_sweeps"]
        print(f"fault microbench (batch lane): {fault['faults']} "
              f"faults in {fault['wall_s']:.3f}s "
              f"({fault['faults_per_s']:.0f} faults/s; scalar lane "
              f"{scalar['faults_per_s']:.0f} faults/s)")
        print("per-arch (batch, faults/s): " + ", ".join(
            f"{arch}={fps:.0f}" for arch, fps in
            payload["per_arch_fault_throughput"].items()))
        print(f"invariant sweeps: {sweep['cells']} cells in "
              f"{sweep['wall_s']:.3f}s serial"
              + (f", {payload['invariant_sweeps_parallel']['wall_s']:.3f}s "
                 f"with {payload['invariant_sweeps_parallel']['jobs']} "
                 f"jobs" if "invariant_sweeps_parallel" in payload
                 else "")
              + f" ({'ok' if sweep['ok'] else 'FAILED'})")
        tail = payload["fault_tail_latency"]["per_arch"]
        print("fault tail latency (simulated, p99 us): " + ", ".join(
            f"{arch}={cell['p99_us']:.0f}" for arch, cell in
            tail.items()))
        pager = payload["pager_storm"]["per_arch"]
        print("pager-stall storm (p99 vs serialized control): "
              + ", ".join(
                  f"{arch}={cell['p99_vs_serialized']:.3f}x"
                  for arch, cell in pager.items()))
        print("  tasks completed during pager waits: " + ", ".join(
            f"{arch}={cell['tasks_completed_during_pager_wait']}"
            for arch, cell in pager.items()))
        print(f"wrote {out}")
        baseline = args.baseline
        if baseline and os.path.exists(baseline) \
                and os.path.abspath(baseline) != os.path.abspath(out):
            delta = compare_reports(load_report(baseline), payload)
            print(format_comparison(delta, baseline, out))
        return 0 if sweep["ok"] else 1

    from repro.bench import (
        BsdSUT, FORK_TEST_PROGRAM, MachSUT, SunOsSUT,
        THIRTEEN_PROGRAMS, Table, fmt_sys_elapsed, measure_fork,
        measure_read_file, measure_zero_fill, run_compile_workload,
    )
    from repro.bench.workloads import KB as KB_, MB

    tables = []
    if args.table in (None, "7-1"):
        t1 = Table("Table 7-1: zero fill 1K / fork 256K",
                   ("Mach", "UNIX"))
        rows = ((hw.IBM_RT_PC, BsdSUT, ".45/.58",),
                (hw.MICROVAX_II, BsdSUT, ".58/1.2"),
                (hw.SUN_3_160, SunOsSUT, ".23/.27"))
        for spec, base, paper in rows:
            zm = measure_zero_fill(MachSUT(spec))
            zu = measure_zero_fill(base(spec))
            t1.add(f"zero fill 1K ({spec.name})",
                   f"{zm.cpu_ms:.2f}ms", f"{zu.cpu_ms:.2f}ms",
                   paper.split("/")[0] + "ms", paper.split("/")[1] + "ms")
        paper_fork = {"IBM RT PC": ("41ms", "145ms"),
                      "MicroVAX II": ("59ms", "220ms"),
                      "SUN 3/160": ("68ms", "89ms")}
        for spec, base, _ in rows:
            fm = measure_fork(MachSUT(spec))
            fu = measure_fork(base(spec))
            t1.add(f"fork 256K ({spec.name})",
                   f"{fm.cpu_ms:.0f}ms", f"{fu.cpu_ms:.0f}ms",
                   *paper_fork[spec.name])
        tables.append(t1)
        if not args.quick:
            t2 = Table("Table 7-1: read file (VAX 8200)",
                       ("Mach", "UNIX"))
            for label, size in (("2.5M", int(2.5 * MB)),
                                ("50K", 50 * KB_)):
                mf, ms = measure_read_file(MachSUT(hw.VAX_8200), size)
                uf, us = measure_read_file(BsdSUT(hw.VAX_8200), size)
                t2.add(f"read {label} first", fmt_sys_elapsed(mf),
                       fmt_sys_elapsed(uf))
                t2.add(f"read {label} second", fmt_sys_elapsed(ms),
                       fmt_sys_elapsed(us))
            tables.append(t2)
    if args.table in (None, "7-2"):
        t3 = Table("Table 7-2: compilation", ("Mach", "UNIX"))
        spec13 = THIRTEEN_PROGRAMS if not args.quick else \
            FORK_TEST_PROGRAM
        m = run_compile_workload(MachSUT(hw.VAX_8650), spec13)
        u = run_compile_workload(BsdSUT(hw.VAX_8650, nbufs=64), spec13)
        label = "13 programs" if not args.quick else "1 compile"
        t3.add(f"{label} (generic config)",
               f"{m.elapsed_ms / 1000:.1f}s",
               f"{u.elapsed_ms / 1000:.1f}s",
               "19s" if not args.quick else "", "1:16" if not
               args.quick else "")
        tables.append(t3)
    for table in tables:
        print(table.render())
        print()
    return 0


def cmd_storm(args: argparse.Namespace) -> int:
    """``repro storm``: the fault-storm load generator — tail-latency
    percentiles with per-stage attribution across the arch matrix."""
    import json

    from repro.bench.storm import (
        STORM_SEED, run_pager_storm_matrix, run_storm_matrix,
    )
    from repro.obs import validate_chrome_trace
    from repro.obs.telemetry import format_latency_report

    seed = STORM_SEED if args.seed is None else args.seed
    archs = [args.arch] if args.arch else None
    runner = run_pager_storm_matrix if args.pager else run_storm_matrix
    payload, telemetries = runner(
        archs=archs, quick=args.quick, tasks=args.tasks,
        pages=args.pages, rounds=args.rounds, seed=seed)

    if args.json:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
    elif args.pager:
        print(f"pager-stall storm (seed={seed:#x}): "
              f"{payload['tasks']} tasks x {payload['pages']} pages "
              f"x {payload['rounds']} rounds, stall rate "
              f"{payload['stall_rate']:.0%}")
        for arch, cell in payload["archs"].items():
            control = cell["serialized"]
            print(f"\n{arch}: p99 {cell['p99_us']:.0f}us vs "
                  f"{control['p99_us']:.0f}us serialized "
                  f"({cell['p99_vs_serialized']:.3f}x), elapsed "
                  f"{cell['elapsed_vs_serialized']:.3f}x, "
                  f"{cell['tasks_completed_during_pager_wait']} tasks "
                  f"completed during pager waits, "
                  f"{cell['readahead_pageins']} readahead pageins")
    else:
        print(f"fault storm (seed={seed:#x}): "
              f"{payload['tasks']} tasks x {payload['pages']} pages "
              f"x {payload['rounds']} rounds, ~2x overcommit")
        for arch, report in payload["archs"].items():
            print(f"\n{arch}:")
            print(format_latency_report(report))

    if args.trace_out:
        # The worst-percentile faults of the first arch in the run
        # (narrow with --arch to trace a specific architecture).
        first = next(iter(telemetries))
        trace = telemetries[first].worst_chrome_trace(
            process_name=f"repro-storm-{first}")
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems:
                print(f"invalid trace: {problem}", file=sys.stderr)
            return 1
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(trace, separators=(",", ":")))
            handle.write("\n")
        print(f"wrote worst-fault trace ({first}) to "
              f"{args.trace_out}")
    return 0


def _lint_tree_digest():
    """Digest of every source file plus the lint versions — the key
    under which the layering/concurrency lint results are cached.
    None (cache miss) when anything goes wrong; the lints then just
    run."""
    try:
        from repro.analysis.cache import tree_digest
        from repro.analysis.flow import _source_root
        from repro.analysis.layering import (
            LINT_VERSION as LAYERING_VERSION,
            _module_name,
        )
        from repro.analysis.race import LINT_VERSION as RACE_VERSION

        base = _source_root(None)
        sources = {_module_name(base, path, "repro"): path.read_text()
                   for path in sorted(base.rglob("*.py"))}
        return tree_digest(sources,
                           {"lint:layering": LAYERING_VERSION,
                            "lint:race": RACE_VERSION})
    except Exception:
        return None


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: static analysis, then invariant sweeps."""
    from time import perf_counter

    from repro.analysis import (
        FlowReport,
        lint_source_concurrency,
        lint_source_tree,
        run_flow_passes,
        run_sweeps,
    )
    from repro.analysis.cache import DEFAULT_DIR, AnalysisCache
    from repro.analysis.flow import FLOW_PASS_NAMES
    from repro.analysis.report import render_report
    from repro.analysis.sweeps import SWEEP_ARCHS

    cache_dir = None if args.no_cache else DEFAULT_DIR
    started = perf_counter()
    problems: list[str] = []     # findings + analysis errors (--report)

    def guarded(label, lint):
        # A crashing analysis is itself a finding: reporting the tree
        # clean because the checker died would be lying.
        try:
            return lint()
        except Exception as exc:
            problems.append(f"analysis error: {label} crashed: {exc!r}")
            return []

    lint_cache = AnalysisCache(cache_dir) if cache_dir is not None \
        else None
    lint_digest = _lint_tree_digest() if lint_cache is not None \
        else None
    cached_lint = lint_cache.load_lint(lint_digest) \
        if lint_digest is not None else None
    if cached_lint is not None:
        print("layering + concurrency lints: unchanged tree, served "
              "from cache")
        lint_lines = [str(v) for v in cached_lint.get("violations", [])]
    else:
        print("layering lint: checking the MD/MI import contract ...")
        violations = guarded("layering lint", lint_source_tree)
        print("concurrency lint: may-yield atomicity + guarded-by "
              "contract ...")
        violations += guarded("concurrency lint",
                              lint_source_concurrency)
        lint_lines = [str(v) for v in violations]
        # Never cache a run where a lint crashed (problems non-empty
        # here can only mean a crash) — the next run must retry it.
        if lint_cache is not None and lint_digest is not None \
                and not problems:
            try:
                lint_cache.store_lint(lint_digest, lint_lines)
            except OSError:
                pass
    print("flow passes: " + ", ".join(FLOW_PASS_NAMES) + " ...")
    try:
        flow = run_flow_passes(cache_dir=cache_dir, jobs=args.jobs)
    except Exception as exc:
        problems.append(f"analysis error: flow passes crashed: {exc!r}")
        flow = FlowReport((), (), ())

    problems += lint_lines
    problems += [str(f) for f in flow.findings]
    problems += [f"analysis error: {e.pass_name} pass crashed: "
                 f"{e.message}" for e in flow.errors]
    for line in problems:
        print(f"  {line}")
    wall = perf_counter() - started
    print(f"flow passes: analyzed {len(flow.analyzed)} module(s), "
          f"{len(flow.cached)} cached ({wall:.2f}s)")
    suffix = (f" ({len(flow.suppressed)} reviewed suppression(s))"
              if flow.suppressed else "")
    print(f"lint: {len(problems)} problem(s){suffix}" if problems
          else f"lint: clean{suffix}")
    if cache_dir is not None:
        try:
            AnalysisCache(cache_dir).write_stats({
                "analyzed": len(flow.analyzed),
                "cached": len(flow.cached),
                "wall_s": round(wall, 3),
            })
        except OSError as exc:
            print(f"warning: could not write cache stats: {exc}",
                  file=sys.stderr)
    if args.report:
        text = render_report(
            problems, list(flow.findings), list(flow.errors),
            suppressed=len(flow.suppressed),
            analyzed=len(flow.analyzed), cached=len(flow.cached),
            wall_s=wall)
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote report ({len(problems)} problem(s)) to "
              f"{args.report}")
    if problems:
        return 1
    if args.lint_only:
        return 0

    archs = [args.arch] if args.arch else None
    names = ", ".join(archs or SWEEP_ARCHS)
    print(f"\ninvariant sweeps: fork+COW, pageout-pressure, shootdown "
          f"on {names} ...")
    results = run_sweeps(archs=archs, verbose=True, jobs=args.jobs)
    failed = [r for r in results if not r.ok]
    print(f"\nsweeps: {len(results) - len(failed)}/{len(results)} "
          f"cells passed")
    return 1 if failed else 0


def cmd_faultsweep(args: argparse.Namespace) -> int:
    """``repro faultsweep``: the fault-injection survival matrix."""
    from repro.inject import run_faultsweep
    from repro.inject.sweep import QUICK_ARCHS, SCENARIOS, SWEEP_ARCHS

    archs = [args.arch] if args.arch else None
    scenarios = [args.scenario] if args.scenario else None
    names = ", ".join(archs or (QUICK_ARCHS if args.quick
                                else tuple(SWEEP_ARCHS)))
    print(f"fault sweep (seed={args.seed:#x}): "
          f"{', '.join(scenarios or SCENARIOS)}")
    print(f"architectures: {names}\n")
    results = run_faultsweep(archs=archs, scenarios=scenarios,
                             seed=args.seed, quick=args.quick,
                             verbose=True, jobs=args.jobs)
    failed = [r for r in results if not r.ok]
    injected = sum(r.injected for r in results)
    absorbed = sum(r.typed_errors for r in results)
    print(f"\nsweep: {len(results) - len(failed)}/{len(results)} cells "
          f"survived ({injected} faults injected, {absorbed} typed "
          f"errors absorbed)")
    return 1 if failed else 0


def cmd_races(args: argparse.Namespace) -> int:
    """``repro races``: the concurrency storm / schedule explorer."""
    from repro.analysis.race import (
        DEFAULT_SEED,
        QUICK_ARCHS,
        explore_shootdown,
        run_races,
    )
    from repro.analysis.sweeps import SWEEP_ARCHS
    from repro.core.statistics import KernelStats
    from repro.pmap.interface import ShootdownStrategy

    if args.explore:
        strategy = ShootdownStrategy(args.strategy) if args.strategy \
            else ShootdownStrategy.DEFERRED
        arch = args.arch or "generic"
        print(f"schedule exploration: bounded DFS over the small "
              f"shootdown workload ({arch}, {strategy.value}) ...")
        stats = KernelStats()
        result = explore_shootdown(arch=arch, strategy=strategy,
                                   max_schedules=args.max_schedules,
                                   kernel_stats=stats)
        print(f"explored {result.schedules_explored} schedule(s), "
              f"{result.decision_points} decision point(s) deep, "
              f"{result.pruned} branch(es) pruned by state hash")
        for prefix, detail in result.failures:
            print(f"  FAILING SCHEDULE {list(prefix)}: {detail}")
        print("exploration: " + ("clean" if result.ok else
                                 f"{len(result.failures)} failure(s)"))
        return 0 if result.ok else 1

    archs = [args.arch] if args.arch else None
    strategies = [ShootdownStrategy(args.strategy)] if args.strategy \
        else None
    names = ", ".join(archs or (QUICK_ARCHS if args.quick
                                else tuple(SWEEP_ARCHS)))
    print(f"race storm (seed={args.seed:#x}): fork+COW, "
          f"pageout-pressure, shootdown under seeded-random schedules")
    print(f"architectures: {names}; strategies: "
          f"{', '.join(s.value for s in (strategies or ShootdownStrategy))}"
          f"\n")
    results = run_races(archs=archs, strategies=strategies,
                        seed=args.seed, quick=args.quick, verbose=True,
                        jobs=args.jobs)
    failed = [r for r in results if not r.ok]
    races = sum(r.races for r in results)
    events = sum(r.events for r in results)
    print(f"\nstorm: {len(results) - len(failed)}/{len(results)} cells "
          f"clean ({races} race(s), {events} events timestamped)")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mach VM reproduction (Rashid et al., ASPLOS "
                    "1987)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list simulated machines")

    demo = sub.add_parser("demo", help="core-mechanism walkthrough")
    demo.add_argument("--machine", default="MicroVAX II")

    ftrace = sub.add_parser("fault-trace",
                            help="narrate one copy-on-write fault")
    ftrace.add_argument("--machine", default="MicroVAX II")

    trace = sub.add_parser(
        "trace",
        help="record a workload on the instrumentation bus and "
             "export it (Chrome trace / metrics summary / span tree)")
    trace.add_argument("--machine", default="VAX 11/784",
                       help="machine preset (default is a 4-CPU VAX "
                            "so the trace shows one lane per CPU)")
    trace.add_argument("--format", choices=["chrome", "summary",
                                            "spans"],
                       default="chrome",
                       help="chrome: Perfetto-loadable trace_event "
                            "JSON; summary: derived metrics + top-N "
                            "profile; spans: the nested span tree")
    trace.add_argument("--quick", action="store_true",
                       help="smaller workload (CI smoke)")
    trace.add_argument("--out", help="write to a file instead of "
                                     "stdout")

    show = sub.add_parser("show",
                          help="render kernel structures as ASCII")
    show.add_argument("--machine", default="MicroVAX II")

    bench = sub.add_parser("bench", help="regenerate evaluation tables")
    bench.add_argument("--table", choices=["7-1", "7-2"])
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads")
    bench.add_argument("--json", action="store_true",
                       help="time the simulator's own hot paths "
                            "(fault microbench + sweep wall-clock) "
                            "and write a JSON report")
    bench.add_argument("--out",
                       help="output file for --json "
                            "(default BENCH_9.json)")
    bench.add_argument("--seed", type=lambda v: int(v, 0),
                       default=None,
                       help="seed for the microbench forget order "
                            "(recorded in the JSON report)")
    bench.add_argument("--baseline", default="BENCH_8.json",
                       help="previous BENCH_<n>.json to print a "
                            "before/after ratio against (skipped "
                            "when missing)")

    storm = sub.add_parser(
        "storm",
        help="fault-storm load generator: tail-latency percentiles "
             "(p50/p95/p99/p999) with per-pipeline-stage attribution")
    storm.add_argument("--arch", choices=["generic", "vax", "rt_pc",
                                          "sun3", "sun3_vac",
                                          "ns32082"],
                       help="storm a single pmap architecture "
                            "(default: the whole matrix)")
    storm.add_argument("--tasks", type=int, default=None,
                       help="concurrent faulting tasks (default 8, "
                            "quick 4)")
    storm.add_argument("--pages", type=int, default=None,
                       help="pages per task working set (default 6, "
                            "quick 4)")
    storm.add_argument("--rounds", type=int, default=None,
                       help="forget/refault rounds per task "
                            "(default 3, quick 2)")
    storm.add_argument("--seed", type=lambda v: int(v, 0),
                       default=None,
                       help="seed for per-task page-visit orders "
                            "(recorded in the report)")
    storm.add_argument("--pager", action="store_true",
                       help="pager-stall storm: external-style store "
                            "pagers with injected transient stalls, "
                            "each cell paired with a serialized "
                            "pre-v2 control")
    storm.add_argument("--quick", action="store_true",
                       help="3 architectures, smaller load (CI smoke)")
    storm.add_argument("--json", action="store_true",
                       help="emit the JSON latency report instead of "
                            "the per-arch tables")
    storm.add_argument("--out", help="output file for --json")
    storm.add_argument("--trace-out",
                       help="also export the worst-percentile faults "
                            "of the first arch as Chrome trace_event "
                            "JSON")

    check = sub.add_parser(
        "check", help="static analysis + runtime invariant sweeps")
    check.add_argument("--lint-only", action="store_true",
                       help="run only the static analyses (no sweeps)")
    check.add_argument("--report",
                       help="also write a versioned JSON report "
                            "(schema_version, findings sorted by "
                            "file/line/rule, analysis errors) to "
                            "this file")
    check.add_argument("--no-cache", action="store_true",
                       help="ignore and don't write the incremental "
                            "analysis cache (.repro-cache/)")
    check.add_argument("--arch", choices=["generic", "vax", "rt_pc",
                                          "sun3", "ns32082"],
                       help="sweep a single pmap architecture")
    check.add_argument("--jobs", type=int, default=None,
                       help="run arch x workload sweep cells in N "
                            "worker processes (default serial)")

    fault = sub.add_parser(
        "faultsweep",
        help="fault-injection survival matrix (errant pagers, flaky "
             "disks, lossy IPC)")
    fault.add_argument("--quick", action="store_true",
                       help="3 architectures, smaller workloads")
    fault.add_argument("--seed", type=lambda v: int(v, 0),
                       default=0xFA17,
                       help="base seed (every cell derives its own)")
    fault.add_argument("--arch", choices=["generic", "vax", "rt_pc",
                                          "sun3", "ns32082"],
                       help="sweep a single pmap architecture")
    fault.add_argument("--scenario",
                       choices=["pager-stall", "pager-crash",
                                "pager-garbage", "disk-error",
                                "ipc-loss", "pageout-pressure"],
                       help="run a single fault scenario")
    fault.add_argument("--jobs", type=int, default=None,
                       help="run arch x scenario cells in N worker "
                            "processes (default serial)")

    races = sub.add_parser(
        "races",
        help="concurrency storm: seeded-random schedules + "
             "happens-before TLB race detector")
    races.add_argument("--quick", action="store_true",
                       help="3 architectures instead of 5")
    races.add_argument("--seed", type=lambda v: int(v, 0),
                       default=0xACE5,
                       help="base seed (every cell derives its own; "
                            "printed per cell for replay)")
    races.add_argument("--arch", choices=["generic", "vax", "rt_pc",
                                          "sun3", "ns32082"],
                       help="storm a single pmap architecture")
    races.add_argument("--strategy",
                       choices=["immediate", "deferred", "lazy"],
                       help="storm a single shootdown strategy")
    races.add_argument("--explore", action="store_true",
                       help="bounded DFS over schedules of a small "
                            "shootdown workload instead of the storm")
    races.add_argument("--max-schedules", type=int, default=150,
                       help="schedule budget for --explore")
    races.add_argument("--jobs", type=int, default=None,
                       help="run arch x strategy storm cells in N "
                            "worker processes (default serial)")
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "machines": cmd_machines,
        "demo": cmd_demo,
        "fault-trace": cmd_fault_trace,
        "trace": cmd_trace,
        "show": cmd_show,
        "bench": cmd_bench,
        "storm": cmd_storm,
        "check": cmd_check,
        "faultsweep": cmd_faultsweep,
        "races": cmd_races,
    }[args.command]
    return handler(args)


def check_entry() -> int:
    """Console entry point: ``repro-check`` == ``repro check``."""
    return main(["check"] + sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
