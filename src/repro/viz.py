"""ASCII renderings of the kernel's data structures.

Text diagrams of the paper's four structures (Section 3): a task's
address map, an object's shadow chain, the resident page queues, and a
pmap's mappings.  Used by ``python -m repro show`` and handy in tests
and debugging sessions::

    print(render_address_map(task.vm_map))
    print(render_shadow_chain(entry.vm_object))
    print(render_queues(kernel))
"""

from __future__ import annotations

from repro.core.address_map import AddressMap
from repro.core.constants import VMProt
from repro.core.vm_object import VMObject


def _prot_str(prot: VMProt) -> str:
    return "".join(flag if prot & bit else "-"
                   for flag, bit in (("r", VMProt.READ),
                                     ("w", VMProt.WRITE),
                                     ("x", VMProt.EXECUTE)))


def render_address_map(vm_map: AddressMap, indent: str = "") -> str:
    """One line per map entry, sharing maps rendered inline.

    ::

        [0x00000000, 0x00008000)  rw-/rwx  copy   obj#3 +0x0
        [0x00040000, 0x00042000)  rw-/rwx  share  -> sharing map (2 refs)
            [0x00000000, 0x00002000)  rwx  obj#5 +0x0
    """
    lines = []
    for entry in vm_map.entries():
        prots = (f"{_prot_str(entry.protection)}/"
                 f"{_prot_str(entry.max_protection)}")
        if entry.is_sub_map:
            lines.append(
                f"{indent}[{entry.start:#010x}, {entry.end:#010x})  "
                f"{prots}  {entry.inheritance.value:<5}  "
                f"-> sharing map ({entry.submap.ref_count} refs)")
            lines.append(render_address_map(entry.submap,
                                            indent + "    "))
        else:
            if entry.vm_object is None:
                target = "zero-fill (lazy)"
            else:
                target = (f"obj#{entry.vm_object.object_id} "
                          f"+{entry.offset:#x}")
                if entry.needs_copy:
                    target += "  [needs-copy]"
            lines.append(
                f"{indent}[{entry.start:#010x}, {entry.end:#010x})  "
                f"{prots}  {entry.inheritance.value:<5}  {target}")
    if not lines:
        return f"{indent}(empty map)"
    return "\n".join(lines)


def render_shadow_chain(obj: VMObject) -> str:
    """The shadow chain from *obj* down to its bottom object.

    ::

        obj#9   internal  2 pages resident  (refs 1)
          | shadows +0x0
        obj#3   external  5 pages resident  (refs 2)  pager vnode:/bin/cc
    """
    lines = []
    current = obj
    while current is not None:
        kind = "internal" if current.internal else "external"
        pager = ""
        if current.pager is not None:
            name = getattr(current.pager, "name", None)
            pager = f"  pager {name() if callable(name) else name}"
        lines.append(
            f"obj#{current.object_id:<4} {kind}  "
            f"{current.resident_count} pages resident  "
            f"(refs {current.ref_count}){pager}")
        if current.shadow is not None:
            lines.append(f"  | shadows +{current.shadow_offset:#x}")
        current = current.shadow
    return "\n".join(lines)


def render_queues(kernel) -> str:
    """The resident page table's allocation queues, summarized.

    ::

        free     122 frames
        active    10 pages: obj#3[0x0 0x1000] obj#5[0x0]
        inactive   4 pages: obj#3[0x2000 ...]
        wired      1 page
    """
    resident = kernel.vm.resident

    def describe(pages, limit=8):
        by_object: dict[int, list[int]] = {}
        for page in pages:
            by_object.setdefault(page.vm_object.object_id,
                                 []).append(page.offset)
        parts = []
        for object_id, offsets in sorted(by_object.items()):
            shown = " ".join(f"{o:#x}" for o in sorted(offsets)[:limit])
            suffix = " ..." if len(offsets) > limit else ""
            parts.append(f"obj#{object_id}[{shown}{suffix}]")
        return " ".join(parts)

    lines = [
        f"free     {resident.free_count:>4} frames",
        f"active   {resident.active_count:>4} pages: "
        f"{describe(resident.iter_active())}",
        f"inactive {resident.inactive_count:>4} pages: "
        f"{describe(resident.iter_inactive())}",
        f"wired    {resident.wired_count:>4} pages",
    ]
    return "\n".join(lines)


def render_pmap(pmap, start: int = 0, end: int = 1 << 32,
                limit: int = 32) -> str:
    """The hardware mappings a pmap currently holds in [start, end).

    Shows what the MD layer *remembers* — compare with the address map
    to see lazy evaluation and forgetting at work.
    """
    lines = []
    count = 0
    for va in pmap._hw_iter(start, end):
        hit = pmap._hw_lookup(va)
        if hit is None:
            continue
        count += 1
        if count > limit:
            lines.append("  ...")
            break
        frame, prot = hit
        lines.append(f"  {va:#010x} -> {frame:#010x}  "
                     f"{_prot_str(prot)}")
    if not lines:
        return f"{pmap.name}: (no hardware mappings)"
    return f"{pmap.name}:\n" + "\n".join(lines)


def render_task(task) -> str:
    """A full snapshot of one task: map, objects, pmap."""
    sections = [f"=== {task.name} ===",
                "address map:",
                render_address_map(task.vm_map, indent="  ")]
    seen = set()
    for entry in task.vm_map.entries():
        roots = []
        if entry.vm_object is not None:
            roots.append(entry.vm_object)
        elif entry.is_sub_map:
            roots += [leaf.vm_object
                      for leaf in entry.submap.entries()
                      if leaf.vm_object is not None]
        for obj in roots:
            if obj.object_id in seen:
                continue
            seen.add(obj.object_id)
            sections.append(f"shadow chain for obj#{obj.object_id}:")
            sections.append("  " + render_shadow_chain(obj)
                            .replace("\n", "\n  "))
    sections.append("pmap:")
    sections.append("  " + render_pmap(task.pmap)
                    .replace("\n", "\n  "))
    return "\n".join(sections)
