"""Per-fault pipeline-stage telemetry: tail latency with attribution.

:class:`FaultTelemetry` subscribes to the :class:`~repro.obs.bus.EventBus`
and turns the span stream into a fault-latency distribution with
per-stage attribution.  Every ``vm/fault`` span (either lane — the
scalar reference path or the batch fast lane) becomes one latency
sample; stage spans nested inside it attribute slices of that latency
to the fault pipeline's stages:

========== =========================== ==============================
stage      bus span                    what it covers
========== =========================== ==============================
mmu_probe  ``stage/mmu_probe``         TLB-miss hardware walk + fill
map_lookup ``stage/map_lookup``        address-map entry scan(s)
shadow_walk ``stage/shadow_walk``      shadow-chain descent
pager_wait ``pager/call``              pager RPC incl. retry backoff
zero_fill  ``stage/zero_fill``         zeroing a new bottom page
copy_up    ``stage/copy_up``           the COW page copy (+ frame
                                       allocation)
pmap_enter ``pmap/enter`` /            entering hardware translations
           ``pmap/enter_batch``
shootdown  ``stage/shootdown``         executing TLB-flush plans
reclaim    ``stage/reclaim``           synchronous low-memory stall
                                       (the daemon run "in front of"
                                       an allocation)
other      (derived)                   fault time none of the stages
                                       claimed
========== =========================== ==============================

Attribution is by *self time*: a stage's sample is its span duration
minus the durations of stage spans nested inside it (``pager/call``
inside ``stage/shadow_walk`` bills the RPC to ``pager_wait``, not to
the walk).  Stage spans seen outside any open fault — the batch lane's
deferred ``pmap/enter_batch`` flush, a shootdown from the pageout
daemon — accumulate in :attr:`outside_us` so no stage time is silently
dropped.  All durations are *simulated* microseconds off the machine
clock, so reports are deterministic for a given seed.

Distributions go into the bounded log-bucket
:class:`~repro.obs.metrics.Histogram` (no raw samples kept); the K
worst faults keep their buffered event lists for Chrome-trace export
of exactly the tail the percentiles point at.

Standard library only — see the module docstring of
:mod:`repro.obs.bus`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import chrome_trace
from repro.obs.metrics import Histogram

__all__ = ["FaultTelemetry", "STAGES", "STAGE_EVENTS",
           "format_latency_report"]

#: bus span name -> pipeline stage it attributes to.
STAGE_EVENTS = {
    "stage/mmu_probe": "mmu_probe",
    "stage/map_lookup": "map_lookup",
    "stage/shadow_walk": "shadow_walk",
    "pager/call": "pager_wait",
    "stage/zero_fill": "zero_fill",
    "stage/copy_up": "copy_up",
    "pmap/enter": "pmap_enter",
    "pmap/enter_batch": "pmap_enter",
    "stage/shootdown": "shootdown",
    "stage/reclaim": "reclaim",
}

#: Report order of the pipeline stages ("reclaim" is the synchronous
#: low-memory stall; "other" is the derived remainder of fault time no
#: stage claimed).
STAGES = ("mmu_probe", "map_lookup", "shadow_walk", "pager_wait",
          "zero_fill", "copy_up", "pmap_enter", "shootdown",
          "reclaim", "other")

#: Events buffered per fault for worst-fault trace export.
_FAULT_EVENT_CAP = 2048


class _OpenFault:
    """One in-flight ``vm/fault`` span on a track."""

    __slots__ = ("start", "task", "vaddr", "stage_us", "nested_us",
                 "events", "truncated")

    def __init__(self, event: Any) -> None:
        self.start = event.ts_us
        self.task = event.task
        self.vaddr = event.data.get("vaddr")
        self.stage_us: Dict[str, float] = {}
        self.nested_us = 0.0
        self.events: List[Any] = []
        self.truncated = False


class _TrackState:
    """Per-track span bookkeeping (spans nest strictly per track)."""

    __slots__ = ("faults", "stages", "pending_mmu_us")

    def __init__(self) -> None:
        self.faults: List[_OpenFault] = []
        #: open stage frames: [stage, kind, start_ts, child_us].
        self.stages: List[list] = []
        #: a trap-raising ``stage/mmu_probe`` closes *before* the
        #: ``vm/fault`` span it causes opens; its time is held here and
        #: folded into the next fault on the track.
        self.pending_mmu_us = 0.0


class FaultTelemetry:
    """Fault tail-latency observer: histograms + worst-fault traces.

    Attach to a bus (or any object with an ``events`` attribute — a
    kernel or a machine), run a workload, then read :meth:`report`::

        telemetry = FaultTelemetry().attach(kernel)
        ... storm ...
        report = telemetry.report()
        report["p999_us"], report["stages"]["pager_wait"]["p99"]

    ``keep_worst`` bounds how many worst-latency faults keep their
    buffered event lists for :meth:`worst_chrome_trace`.
    """

    def __init__(self, keep_worst: int = 8) -> None:
        self.keep_worst = keep_worst
        self.latency = Histogram("fault_latency_us", unit="us")
        self.stage_hist: Dict[str, Histogram] = {
            stage: Histogram(f"stage_{stage}_us", unit="us")
            for stage in STAGES
        }
        #: stage self-time observed outside any open fault span
        #: (deferred batch flushes, daemon shootdowns).
        self.outside_us: Dict[str, float] = {}
        self.fault_errors = 0
        self._tracks: Dict[str, _TrackState] = {}
        #: min-heap of (latency_us, seq, info-dict) for the K worst.
        self._worst: List[Tuple[float, int, Dict[str, Any]]] = []
        self._seq = itertools.count()
        self._bus: Optional[Any] = None

    # -- subscription ------------------------------------------------

    def attach(self, bus: Any) -> "FaultTelemetry":
        """Subscribe to *bus* (or to ``bus.events`` when given a
        kernel or machine)."""
        bus = getattr(bus, "events", bus)
        if self._bus is not None:
            self.detach()
        self._bus = bus
        bus.subscribe(self._on_event)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def __enter__(self) -> "FaultTelemetry":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.detach()
        return False

    # -- event handling ----------------------------------------------

    def _on_event(self, event: Any) -> None:
        track = self._tracks.get(event.track)
        if track is None:
            track = self._tracks[event.track] = _TrackState()
        name = f"{event.subsystem}/{event.kind}"
        phase = event.phase
        is_fault = name == "vm/fault"
        if is_fault and phase == "B":
            fault = _OpenFault(event)
            if track.pending_mmu_us:
                fault.stage_us["mmu_probe"] = track.pending_mmu_us
                track.pending_mmu_us = 0.0
            track.faults.append(fault)
        # Buffer into every open fault on the track — after a fault's
        # B has opened it and before its E closes it, so each buffer
        # is a balanced span subtree for trace export.
        for fault in track.faults:
            if len(fault.events) < _FAULT_EVENT_CAP:
                fault.events.append(event)
            else:
                fault.truncated = True
        if is_fault:
            if phase == "E":
                self._close_fault(track, event)
        else:
            stage = STAGE_EVENTS.get(name)
            if stage is not None:
                if phase == "B":
                    track.stages.append([stage, event.kind,
                                         event.ts_us, 0.0])
                elif phase == "E":
                    self._close_stage(track, event)

    def _close_stage(self, track: _TrackState, event: Any) -> None:
        frames = track.stages
        for i in range(len(frames) - 1, -1, -1):
            if frames[i][1] == event.kind:
                stage, _, start, child_us = frames.pop(i)
                break
        else:
            return  # attached mid-span: no matching B
        duration = event.ts_us - start
        self_us = max(0.0, duration - child_us)
        if frames:
            frames[-1][3] += duration
        if track.faults:
            fault = track.faults[-1]
            fault.stage_us[stage] = \
                fault.stage_us.get(stage, 0.0) + self_us
        elif stage == "mmu_probe" and event.data.get("error"):
            # The probe that raised the trap: part of the fault that
            # is about to open on this track.
            track.pending_mmu_us += self_us
        else:
            self.outside_us[stage] = \
                self.outside_us.get(stage, 0.0) + self_us

    def _close_fault(self, track: _TrackState, event: Any) -> None:
        if not track.faults:
            return  # attached mid-fault
        fault = track.faults.pop()
        total = event.ts_us - fault.start
        self.latency.record(total)
        if event.data.get("error"):
            self.fault_errors += 1
        attributed = fault.nested_us
        for stage, self_us in fault.stage_us.items():
            self.stage_hist[stage].record(self_us)
            attributed += self_us
        self.stage_hist["other"].record(max(0.0, total - attributed))
        if track.faults:
            # A nested fault (pager-driven) bills its whole latency to
            # the parent's accounting, never double to its stages.
            track.faults[-1].nested_us += total
        if self.keep_worst > 0:
            info = {
                "latency_us": total,
                "task": fault.task,
                "vaddr": fault.vaddr,
                "track": event.track,
                "stage_us": dict(fault.stage_us),
                "events": fault.events,
                "truncated": fault.truncated,
            }
            item = (total, next(self._seq), info)
            if len(self._worst) < self.keep_worst:
                heapq.heappush(self._worst, item)
            elif total > self._worst[0][0]:
                heapq.heapreplace(self._worst, item)

    # -- reporting ---------------------------------------------------

    def worst_faults(self) -> List[Dict[str, Any]]:
        """The K worst-latency faults, slowest first."""
        return [info for _, _, info in
                sorted(self._worst, reverse=True)]

    def worst_chrome_trace(self,
                           process_name: str = "repro-storm"
                           ) -> List[Dict[str, Any]]:
        """A Chrome trace_event list of the worst-percentile faults'
        buffered span subtrees (loadable in Perfetto)."""
        events: List[Any] = []
        seen = set()
        for info in self.worst_faults():
            for event in info["events"]:
                if id(event) not in seen:
                    seen.add(id(event))
                    events.append(event)
        events.sort(key=lambda e: e.ts_us)
        return chrome_trace(events, process_name=process_name)

    def report(self) -> Dict[str, Any]:
        """A JSON-ready latency report: percentiles + per-stage
        attribution.  ``share`` is the stage's fraction of the total
        fault time across all faults."""
        for track in self._tracks.values():
            # A trap-raising probe whose fault never opened (e.g. the
            # access error propagated) is plain outside-fault time.
            if track.pending_mmu_us and not track.faults:
                self.outside_us["mmu_probe"] = \
                    self.outside_us.get("mmu_probe", 0.0) \
                    + track.pending_mmu_us
                track.pending_mmu_us = 0.0
        latency = self.latency
        total_us = latency.total
        stages: Dict[str, Any] = {}
        for stage in STAGES:
            hist = self.stage_hist[stage]
            if not hist.count:
                continue
            digest = hist.to_dict()
            digest["share"] = round(hist.total / total_us, 4) \
                if total_us else 0.0
            stages[stage] = digest
        return {
            "faults": latency.count,
            "fault_errors": self.fault_errors,
            "mean_us": round(latency.mean, 3),
            "p50_us": round(latency.percentile(50), 3),
            "p95_us": round(latency.percentile(95), 3),
            "p99_us": round(latency.percentile(99), 3),
            "p999_us": round(latency.percentile(99.9), 3),
            "max_us": round(latency.max, 3),
            "stages": stages,
            "outside_us": {stage: round(us, 3) for stage, us
                           in sorted(self.outside_us.items())},
        }


def format_latency_report(report: Dict[str, Any]) -> str:
    """Render one :meth:`FaultTelemetry.report` dict as a text table."""
    lines = [
        (f"faults: {report['faults']}  "
         f"p50={report['p50_us']:.1f}us  "
         f"p95={report['p95_us']:.1f}us  "
         f"p99={report['p99_us']:.1f}us  "
         f"p999={report['p999_us']:.1f}us  "
         f"max={report['max_us']:.1f}us"),
    ]
    stages = report.get("stages") or {}
    if stages:
        lines.append(f"  {'stage':<12} {'count':>8} {'mean':>10} "
                     f"{'p99':>10} {'share':>7}")
        for stage in STAGES:
            digest = stages.get(stage)
            if digest is None:
                continue
            lines.append(
                f"  {stage:<12} {digest['count']:>8} "
                f"{digest['mean']:>8.1f}us {digest['p99']:>8.1f}us "
                f"{digest['share'] * 100:>6.1f}%")
    outside = report.get("outside_us") or {}
    if outside:
        parts = ", ".join(f"{stage}={us:.0f}us"
                          for stage, us in outside.items())
        lines.append(f"  outside faults: {parts}")
    if report.get("fault_errors"):
        lines.append(f"  fault errors: {report['fault_errors']}")
    return "\n".join(lines)
