"""Exporters: Chrome ``trace_event`` JSON (Perfetto-loadable).

The Chrome trace format is a JSON array of event objects with ``ph``
(phase), ``ts`` (microseconds), ``pid``/``tid`` (process/thread lanes)
and ``args``.  We map each bus track (``cpu0``, ``cpu1``, ...,
``daemon``, ``pager``) to its own ``tid`` and name it with ``"M"``
metadata events, so a trace of a 4-CPU machine loads in Perfetto or
``chrome://tracing`` as one lane per simulated CPU plus service lanes.

:func:`validate_chrome_trace` is the checker the CI smoke job runs:
well-formed JSON, required fields, and per-track monotonically
non-decreasing timestamps (guaranteed by construction — ``ts`` is the
machine-wide simulated elapsed clock — but verified anyway).

Standard library only — see the module docstring of
:mod:`repro.obs.bus`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

__all__ = ["chrome_trace", "chrome_trace_json", "validate_chrome_trace"]

_PID = 1
_JSON_SCALARS = (str, int, float, bool, type(None))


def _track_order(track: str) -> tuple:
    """Sort key giving CPU tracks their numeric order first, then
    service tracks alphabetically."""
    if track.startswith("cpu") and track[3:].isdigit():
        return (0, int(track[3:]), "")
    return (1, 0, track)


def _args(data: Dict[str, Any]) -> Dict[str, Any]:
    """Chrome ``args`` must be JSON-serializable; stringify the rest
    (pmap objects, enums, tuples)."""
    return {k: v if isinstance(v, _JSON_SCALARS) else str(v)
            for k, v in data.items()}


def chrome_trace(events: List[Any],
                 process_name: str = "repro") -> List[Dict[str, Any]]:
    """Convert bus events to a list of Chrome trace_event dicts.

    ``E`` events with no open ``B`` on their track (subscriber attached
    mid-span) are dropped so the trace always balances.
    """
    tracks = sorted({e.track for e in events}, key=_track_order)
    tids = {track: i + 1 for i, track in enumerate(tracks)}
    out: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": process_name},
    }]
    for track in tracks:
        out.append({"name": "thread_name", "ph": "M", "pid": _PID,
                    "tid": tids[track], "args": {"name": track}})
    open_depth: Dict[tuple, int] = {}
    for event in events:
        tid = tids[event.track]
        name = f"{event.subsystem}/{event.kind}"
        record: Dict[str, Any] = {
            "name": name,
            "cat": event.subsystem,
            "ts": event.ts_us,
            "pid": _PID,
            "tid": tid,
            "args": _args(event.data),
        }
        if event.task:
            record["args"]["task"] = event.task
        key = (tid,)
        if event.phase == "B":
            record["ph"] = "B"
            open_depth[key] = open_depth.get(key, 0) + 1
        elif event.phase == "E":
            if not open_depth.get(key, 0):
                continue  # unbalanced: attach happened mid-span
            open_depth[key] -= 1
            record["ph"] = "E"
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        out.append(record)
    return out


def chrome_trace_json(events: List[Any],
                      process_name: str = "repro") -> str:
    """The trace as a JSON string ready to write to a ``.json`` file."""
    return json.dumps(chrome_trace(events, process_name=process_name),
                      indent=None, separators=(",", ":"))


def validate_chrome_trace(
        trace: Union[str, List[Dict[str, Any]]]) -> List[str]:
    """Check a Chrome trace for well-formedness.

    Returns a list of problem strings (empty means valid): parses the
    JSON, requires ``name``/``ph``/``pid``/``tid`` (+ ``ts`` for
    non-metadata events), requires balanced ``B``/``E`` nesting and
    monotonically non-decreasing ``ts`` per track.
    """
    problems: List[str] = []
    if isinstance(trace, str):
        try:
            trace = json.loads(trace)
        except ValueError as exc:
            return [f"not valid JSON: {exc}"]
    if isinstance(trace, dict):
        trace = trace.get("traceEvents", [])
    if not isinstance(trace, list):
        return ["trace is not a JSON array (or traceEvents object)"]
    last_ts: Dict[Any, float] = {}
    depth: Dict[Any, int] = {}
    for i, record in enumerate(trace):
        if not isinstance(record, dict):
            problems.append(f"event {i}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in record:
                problems.append(f"event {i}: missing {field!r}")
        phase = record.get("ph")
        if phase == "M":
            continue
        ts = record.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: missing numeric 'ts'")
            continue
        tid = record.get("tid")
        if tid in last_ts and ts < last_ts[tid]:
            problems.append(
                f"event {i}: ts {ts} goes backwards on tid {tid} "
                f"(previous {last_ts[tid]})")
        last_ts[tid] = ts
        if phase == "B":
            depth[tid] = depth.get(tid, 0) + 1
        elif phase == "E":
            depth[tid] = depth.get(tid, 0) - 1
            if depth[tid] < 0:
                problems.append(f"event {i}: 'E' with no open 'B' "
                                f"on tid {tid}")
                depth[tid] = 0
    for tid, d in depth.items():
        if d > 0:
            problems.append(f"tid {tid}: {d} span(s) never closed")
    return problems
