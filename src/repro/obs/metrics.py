"""Metrics derived from bus events: counters and histograms.

:class:`MetricsRegistry` subscribes to an :class:`~repro.obs.bus.EventBus`
and maintains counters with the same names as the hand-bumped
:class:`~repro.core.statistics.KernelStats` fields, *derived* from the
event stream — plus distributions the flat counters cannot express
(fault latency, shadow-chain depth).  A consistency test asserts the
derived counts equal the legacy fields on the demo workload, which is
what lets future PRs trust the bus as the single source of truth.

Standard library only — see the module docstring of
:mod:`repro.obs.bus`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count of one event kind."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        self.value += by

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A recorded distribution (exact samples; these runs are small)."""

    __slots__ = ("name", "unit", "samples")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (nearest-rank), 0 when empty."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def summary(self) -> str:
        unit = self.unit
        return (f"{self.name}: n={self.count} min={self.min:.1f}{unit} "
                f"p50={self.percentile(50):.1f}{unit} "
                f"p95={self.percentile(95):.1f}{unit} "
                f"max={self.max:.1f}{unit} mean={self.mean:.1f}{unit}")

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


#: event name -> derived counter name (mirrors KernelStats fields).
_COUNTER_MAP = {
    "vm/fault": "faults",
    "vm/cow": "cow_faults",
    "vm/zero_fill": "zero_fill_count",
    "vm/pagein": "pageins",
    "pageout/laundered": "pageouts",
    "pageout/reactivate": "reactivations",
    "pmap/shootdown": "shootdowns",
    "ipc/send": "messages_sent",
    "ipc/receive": "messages_received",
    "task/create": "tasks_created",
    "task/terminate": "tasks_terminated",
}


class MetricsRegistry:
    """Counters and histograms fed by the event bus.

    Not attached by default — the bus stays subscriber-free (and the
    fault path allocation-free) until someone calls :meth:`attach` with
    the bus or any object carrying an ``events`` bus attribute (a
    kernel or a machine)::

        registry = MetricsRegistry().attach(kernel)
        ... workload ...
        assert registry.derived()["faults"] == kernel.stats.faults
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._bus: Optional[Any] = None
        # fault B timestamps per CPU: faults are synchronous on their
        # CPU, so a per-CPU stack pairs B with its matching E even if a
        # pager-driven fault nests inside another fault's span.
        self._open_faults: Dict[int, List[float]] = {}
        self.histogram("fault_latency_us", unit="us")
        self.histogram("shadow_chain_depth")
        for name in _COUNTER_MAP.values():
            self.counter(name)
        self.counter("fault_errors")

    # -- registry ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str, unit: str = "") -> Histogram:
        """The histogram called *name*, created on first use."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, unit)
        return histogram

    def derived(self) -> Dict[str, int]:
        """Counter values keyed by their KernelStats-compatible names."""
        return {name: c.value for name, c in self.counters.items()}

    # -- subscription ------------------------------------------------

    def attach(self, bus: Any) -> "MetricsRegistry":
        """Subscribe to *bus* (or to ``bus.events`` when given a kernel
        or machine)."""
        bus = getattr(bus, "events", bus)
        if self._bus is not None:
            self.detach()
        self._bus = bus
        bus.subscribe(self._on_event)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def __enter__(self) -> "MetricsRegistry":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.detach()
        return False

    # -- event handling ----------------------------------------------

    def _on_event(self, event: Any) -> None:
        name = f"{event.subsystem}/{event.kind}"
        if name == "vm/fault":
            if event.phase == "B":
                self.counter("faults").increment()
                self._open_faults.setdefault(event.cpu, []).append(event.ts_us)
            elif event.phase == "E":
                stack = self._open_faults.get(event.cpu)
                if stack:
                    begin = stack.pop()
                    self.histogram("fault_latency_us").record(
                        event.ts_us - begin)
                depth = event.data.get("depth")
                if depth is not None:
                    self.histogram("shadow_chain_depth").record(depth)
                if event.data.get("error"):
                    self.counter("fault_errors").increment()
            return
        if event.phase == "E":
            return  # spans are counted once, at B (or as instants)
        counter_name = _COUNTER_MAP.get(name)
        if counter_name is not None:
            self.counter(counter_name).increment()

    # -- reporting ---------------------------------------------------

    def summary(self) -> str:
        """A text report: non-zero counters then histogram digests."""
        lines = ["derived counters:"]
        for name in sorted(self.counters):
            value = self.counters[name].value
            if value:
                lines.append(f"  {name:<20} {value}")
        if len(lines) == 1:
            lines.append("  (none)")
        lines.append("distributions:")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            if histogram.count:
                lines.append(f"  {histogram.summary()}")
        return "\n".join(lines)
