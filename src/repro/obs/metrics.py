"""Metrics derived from bus events: counters and histograms.

:class:`MetricsRegistry` subscribes to an :class:`~repro.obs.bus.EventBus`
and maintains counters with the same names as the hand-bumped
:class:`~repro.core.statistics.KernelStats` fields, *derived* from the
event stream — plus distributions the flat counters cannot express
(fault latency, shadow-chain depth).  A consistency test asserts the
derived counts equal the legacy fields on the demo workload, which is
what lets future PRs trust the bus as the single source of truth.

Standard library only — see the module docstring of
:mod:`repro.obs.bus`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count of one event kind."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        self.value += by

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


#: Log-bucket geometry: 2**_SUB_BITS linear sub-buckets per power of
#: two bounds the relative quantization error at 2 / 2**_SUB_BITS
#: (~3.1%); _SCALE fixed-points values to eighth-units so that small
#: durations (and integer-valued samples such as chain depths) land in
#: exact buckets.
_SUB_BITS = 6
_SUB = 1 << _SUB_BITS
_SCALE = 8


def _bucket_index(scaled: int) -> int:
    """HDR-style index of a scaled non-negative integer sample: exact
    below ``_SUB``, then ``_SUB`` logarithmically spaced sub-buckets
    per power of two.  Monotonic in *scaled*."""
    if scaled < _SUB:
        return scaled
    shift = scaled.bit_length() - _SUB_BITS
    return (shift << _SUB_BITS) | (scaled >> shift)


def _bucket_value(index: int) -> float:
    """The representative (midpoint) un-scaled value of a bucket."""
    shift = index >> _SUB_BITS
    if shift == 0:
        return index / _SCALE
    mantissa = index & (_SUB - 1)
    lo = mantissa << shift
    return (lo + (1 << shift) / 2.0) / _SCALE


class Histogram:
    """A recorded distribution in bounded log-spaced buckets.

    HDR-histogram style: a sample is fixed-pointed (``_SCALE``) and
    dropped into one of at most a few thousand buckets — exact below
    ``_SUB`` scaled units, then ``_SUB`` sub-buckets per power of two,
    bounding the relative quantization error at ~3%.  Memory stays
    O(distinct buckets) no matter how many samples are recorded (a
    fault storm records millions), and :meth:`percentile` walks the
    sorted bucket keys instead of sorting raw samples.  ``min``,
    ``max``, ``mean`` and ``count`` are tracked exactly; percentiles
    clamp into ``[min, max]`` and report the exact extremes at rank 0
    and rank n-1.
    """

    __slots__ = ("name", "unit", "_buckets", "_count", "_sum", "_min",
                 "_max")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    def record(self, value: float) -> None:
        if self._count == 0:
            self._min = self._max = value
        elif value < self._min:
            self._min = value
        elif value > self._max:
            self._max = value
        self._count += 1
        self._sum += value
        index = _bucket_index(int(value * _SCALE) if value > 0 else 0)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other*'s recorded distribution into this one."""
        if other._count:
            if self._count == 0:
                self._min, self._max = other._min, other._max
            else:
                self._min = min(self._min, other._min)
                self._max = max(self._max, other._max)
            self._count += other._count
            self._sum += other._sum
            for index, n in other._buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
        return self

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        """The exact sum of all recorded samples."""
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (nearest-rank over the log buckets,
        so within ~3% of the exact order statistic), 0 when empty."""
        if not self._count:
            return 0.0
        rank = max(0, min(self._count - 1,
                          int(round(p / 100.0 * (self._count - 1)))))
        if rank == 0:
            return self._min
        if rank == self._count - 1:
            return self._max
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen > rank:
                return min(max(_bucket_value(index), self._min),
                           self._max)
        return self._max

    def to_dict(self) -> Dict[str, float]:
        """A JSON-ready digest (the BENCH/storm report format)."""
        return {
            "count": self._count,
            "total": round(self._sum, 3),
            "mean": round(self.mean, 3),
            "min": round(self._min, 3),
            "max": round(self._max, 3),
            "p50": round(self.percentile(50), 3),
            "p95": round(self.percentile(95), 3),
            "p99": round(self.percentile(99), 3),
            "p999": round(self.percentile(99.9), 3),
        }

    def summary(self) -> str:
        unit = self.unit
        return (f"{self.name}: n={self.count} min={self.min:.1f}{unit} "
                f"p50={self.percentile(50):.1f}{unit} "
                f"p95={self.percentile(95):.1f}{unit} "
                f"max={self.max:.1f}{unit} mean={self.mean:.1f}{unit}")

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


#: event name -> derived counter name (mirrors KernelStats fields).
_COUNTER_MAP = {
    "vm/fault": "faults",
    "vm/cow": "cow_faults",
    "vm/zero_fill": "zero_fill_count",
    "vm/pagein": "pageins",
    "pageout/laundered": "pageouts",
    "pageout/reactivate": "reactivations",
    "pmap/shootdown": "shootdowns",
    "ipc/send": "messages_sent",
    "ipc/receive": "messages_received",
    "task/create": "tasks_created",
    "task/terminate": "tasks_terminated",
}


class MetricsRegistry:
    """Counters and histograms fed by the event bus.

    Not attached by default — the bus stays subscriber-free (and the
    fault path allocation-free) until someone calls :meth:`attach` with
    the bus or any object carrying an ``events`` bus attribute (a
    kernel or a machine)::

        registry = MetricsRegistry().attach(kernel)
        ... workload ...
        assert registry.derived()["faults"] == kernel.stats.faults
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._bus: Optional[Any] = None
        # fault B timestamps per CPU: faults are synchronous on their
        # CPU, so a per-CPU stack pairs B with its matching E even if a
        # pager-driven fault nests inside another fault's span.
        self._open_faults: Dict[int, List[float]] = {}
        self.histogram("fault_latency_us", unit="us")
        self.histogram("shadow_chain_depth")
        for name in _COUNTER_MAP.values():
            self.counter(name)
        self.counter("fault_errors")

    # -- registry ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str, unit: str = "") -> Histogram:
        """The histogram called *name*, created on first use."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, unit)
        return histogram

    def derived(self) -> Dict[str, int]:
        """Counter values keyed by their KernelStats-compatible names."""
        return {name: c.value for name, c in self.counters.items()}

    # -- subscription ------------------------------------------------

    def attach(self, bus: Any) -> "MetricsRegistry":
        """Subscribe to *bus* (or to ``bus.events`` when given a kernel
        or machine)."""
        bus = getattr(bus, "events", bus)
        if self._bus is not None:
            self.detach()
        self._bus = bus
        bus.subscribe(self._on_event)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._on_event)
            self._bus = None

    def __enter__(self) -> "MetricsRegistry":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.detach()
        return False

    # -- event handling ----------------------------------------------

    def _on_event(self, event: Any) -> None:
        name = f"{event.subsystem}/{event.kind}"
        if name == "vm/fault":
            if event.phase == "B":
                self.counter("faults").increment()
                self._open_faults.setdefault(event.cpu, []).append(event.ts_us)
            elif event.phase == "E":
                stack = self._open_faults.get(event.cpu)
                if stack:
                    begin = stack.pop()
                    self.histogram("fault_latency_us").record(
                        event.ts_us - begin)
                depth = event.data.get("depth")
                if depth is not None:
                    self.histogram("shadow_chain_depth").record(depth)
                if event.data.get("error"):
                    self.counter("fault_errors").increment()
            return
        if event.phase == "E":
            return  # spans are counted once, at B (or as instants)
        counter_name = _COUNTER_MAP.get(name)
        if counter_name is not None:
            self.counter(counter_name).increment()

    # -- reporting ---------------------------------------------------

    def summary(self) -> str:
        """A text report: non-zero counters then histogram digests."""
        lines = ["derived counters:"]
        for name in sorted(self.counters):
            value = self.counters[name].value
            if value:
                lines.append(f"  {name:<20} {value}")
        if len(lines) == 1:
            lines.append("  (none)")
        lines.append("distributions:")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            if histogram.count:
                lines.append(f"  {histogram.summary()}")
        return "\n".join(lines)
