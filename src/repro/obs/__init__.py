"""repro.obs — the unified instrumentation bus.

One event API for tracing, metrics and profiling: every subsystem
emits typed :class:`Event` records into the machine's
:class:`EventBus`; observers (the :class:`MetricsRegistry`, the
legacy-compatible :class:`~repro.trace.KernelTracer`, the race
detector, the Chrome-trace exporter) subscribe instead of patching
entry points.

The package is intentionally dependency-free (standard library only):
``repro.obs.bus`` is the one module the hardware substrate and the
pmap layer are allowed to import (the layering lint's ``TELEMETRY``
allowance), so nothing here may import the rest of ``repro``.
Trace-producing workloads therefore live in :mod:`repro.cli`.
"""

from repro.obs.bus import Event, EventBus, EventRecorder
from repro.obs.export import (chrome_trace, chrome_trace_json,
                              validate_chrome_trace)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.spans import Span, build_spans, profile, render_spans
from repro.obs.telemetry import (STAGES, FaultTelemetry,
                                 format_latency_report)

__all__ = [
    "Event",
    "EventBus",
    "EventRecorder",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "FaultTelemetry",
    "STAGES",
    "format_latency_report",
    "Span",
    "build_spans",
    "profile",
    "render_spans",
    "chrome_trace",
    "chrome_trace_json",
    "validate_chrome_trace",
]
