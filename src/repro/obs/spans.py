"""Span reconstruction and profiling over recorded events.

``B``/``E`` event pairs nest — `fault → pager call → disk I/O` — and
this module rebuilds that nesting per display track, then aggregates it
into a top-N self-time profile.  Instant events are attached to the
innermost open span on their track (as ``marks``) so a rendered fault
span shows its zero-fill / COW decisions inline.

Standard library only — see the module docstring of
:mod:`repro.obs.bus`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Span", "build_spans", "profile", "render_spans"]


class Span:
    """One reconstructed begin/end interval."""

    __slots__ = ("name", "subsystem", "kind", "task", "cpu", "track",
                 "start_us", "end_us", "data", "children", "marks")

    def __init__(self, begin: Any) -> None:
        self.name = f"{begin.subsystem}/{begin.kind}"
        self.subsystem = begin.subsystem
        self.kind = begin.kind
        self.task = begin.task
        self.cpu = begin.cpu
        self.track = begin.track
        self.start_us = begin.ts_us
        self.end_us: float = begin.ts_us
        self.data: Dict[str, Any] = dict(begin.data)
        self.children: List["Span"] = []
        self.marks: List[Any] = []

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def self_us(self) -> float:
        """Duration minus time spent in child spans."""
        return self.duration_us - sum(c.duration_us for c in self.children)

    def __repr__(self) -> str:
        return (f"Span({self.name} {self.duration_us:.1f}us "
                f"children={len(self.children)})")


def build_spans(events: List[Any]) -> List[Span]:
    """Rebuild the span forest from an event list.

    Pairing is per track: each ``B`` opens a span nested under the
    track's innermost open span, the matching ``E`` closes it (merging
    the end event's data — outcomes live there).  An ``E`` with no open
    ``B`` on its track is dropped (subscriber attached mid-span); a
    ``B`` never closed is ended at the last timestamp seen.
    """
    roots: List[Span] = []
    open_stacks: Dict[str, List[Span]] = {}
    last_ts = 0.0
    for event in events:
        last_ts = max(last_ts, event.ts_us)
        stack = open_stacks.setdefault(event.track, [])
        if event.phase == "B":
            span = Span(event)
            if stack:
                stack[-1].children.append(span)
            else:
                roots.append(span)
            stack.append(span)
        elif event.phase == "E":
            # close the innermost open span of the same kind; tolerate
            # interleaved kinds by searching down the stack.
            for i in range(len(stack) - 1, -1, -1):
                span = stack[i]
                if span.subsystem == event.subsystem and \
                        span.kind == event.kind:
                    span.end_us = event.ts_us
                    span.data.update(event.data)
                    del stack[i:]
                    break
        else:
            if stack:
                stack[-1].marks.append(event)
    for stack in open_stacks.values():
        for span in stack:
            span.end_us = max(span.end_us, last_ts)
    return roots


def _walk(spans: List[Span]):
    for span in spans:
        yield span
        yield from _walk(span.children)


def profile(events_or_roots: List[Any], top: int = 10) -> str:
    """A text top-N profile aggregated by span name.

    Columns: call count, total (inclusive) time, self time, mean
    inclusive time.  Sorted by self time — where the simulated clock
    actually went.
    """
    if events_or_roots and isinstance(events_or_roots[0], Span):
        roots = events_or_roots
    else:
        roots = build_spans(events_or_roots)
    totals: Dict[str, List[float]] = {}
    for span in _walk(roots):
        entry = totals.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.duration_us
        entry[2] += span.self_us
    if not totals:
        return "no spans recorded"
    rows = sorted(totals.items(), key=lambda kv: kv[1][2], reverse=True)
    lines = [f"{'span':<24} {'count':>7} {'total_us':>12} "
             f"{'self_us':>12} {'mean_us':>10}"]
    for name, (count, total, self_time) in rows[:top]:
        lines.append(f"{name:<24} {count:>7} {total:>12.1f} "
                     f"{self_time:>12.1f} {total / count:>10.1f}")
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more span kind(s) omitted")
    return "\n".join(lines)


def render_spans(roots: List[Span], limit: Optional[int] = 40,
                 _depth: int = 0, _lines: Optional[List[str]] = None) -> str:
    """An indented tree of the first *limit* root spans."""
    lines: List[str] = [] if _lines is None else _lines
    shown = roots if limit is None else roots[:limit]
    for span in shown:
        extra = ""
        if span.data:
            pairs = ", ".join(f"{k}={v}" for k, v in span.data.items())
            extra = f"  [{pairs}]"
        task = f" {span.task}" if span.task else ""
        lines.append(f"{'  ' * _depth}{span.start_us:>10.1f}us "
                     f"{span.name} ({span.duration_us:.1f}us)"
                     f"{task} @{span.track}{extra}")
        render_spans(span.children, None, _depth + 1, lines)
    if _depth == 0:
        if limit is not None and len(roots) > limit:
            lines.append(f"... {len(roots) - limit} more root span(s)")
        return "\n".join(lines) if lines else "no spans recorded"
    return ""
