"""The instrumentation event bus.

Every layer of the reproduction — fault handler, pageout daemon, pmap
and TLB, pagers, IPC ports, scheduler, buffer cache — reports what it
is doing through one :class:`EventBus` owned by the machine.  Observers
(:mod:`repro.trace`, :mod:`repro.analysis.race`, the metrics registry,
the Chrome-trace exporter) subscribe to the bus instead of patching
entry points or installing duck-typed hook attributes.

The bus is deliberately allocation-free when nobody is listening:
``emit()`` returns before constructing an :class:`Event` unless at
least one subscriber is attached, and ``span()`` hands back a shared
null context manager.  The fault hot path therefore pays one attribute
load and one truth test when untraced.

This module is imported by the hardware substrate and the pmap layer,
so it must stay self-contained: standard library only, no imports from
any other ``repro`` package (the layering lint enforces this via its
``TELEMETRY`` allowance).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = ["Event", "EventBus", "EventRecorder"]


class Event:
    """One typed record on the bus.

    ``ts_us`` is the simulated elapsed-time stamp (monotonic across the
    whole machine, so every per-track event stream is non-decreasing).
    ``phase`` follows the Chrome trace_event convention: ``"B"`` begins
    a span, ``"E"`` ends it, ``"i"`` is an instant event.  ``track`` is
    the display lane — ``cpu<N>`` by default, or an override such as
    ``daemon`` / ``pager`` pushed by long-running service loops.
    ``data`` carries kind-specific payload (never copied by the bus).
    """

    __slots__ = ("ts_us", "cpu", "track", "phase", "subsystem", "kind",
                 "task", "data")

    def __init__(self, ts_us: float, cpu: int, track: str, phase: str,
                 subsystem: str, kind: str, task: str,
                 data: Dict[str, Any]) -> None:
        self.ts_us = ts_us
        self.cpu = cpu
        self.track = track
        self.phase = phase
        self.subsystem = subsystem
        self.kind = kind
        self.task = task
        self.data = data

    @property
    def name(self) -> str:
        """The full event name, ``subsystem/kind``."""
        return f"{self.subsystem}/{self.kind}"

    def __repr__(self) -> str:
        extra = f" {self.data}" if self.data else ""
        task = f" task={self.task}" if self.task else ""
        return (f"Event({self.ts_us:.1f}us cpu{self.cpu} {self.phase} "
                f"{self.subsystem}/{self.kind}{task}{extra})")


class _ZeroClock:
    """Fallback clock for buses created outside a machine (tests that
    construct a TLB or CPU standalone)."""

    elapsed_us = 0.0


class _NullSpan:
    """Shared do-nothing span returned when the bus has no subscribers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def note(self, **data: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """A live begin/end span: emits ``B`` on enter, ``E`` on exit.

    ``note(**data)`` accumulates payload attached to the closing event
    (the natural place for outcomes computed during the span).  An
    exception escaping the body is recorded as ``error`` unless the
    body already noted one.
    """

    __slots__ = ("_bus", "_subsystem", "_kind", "_task", "_begin_data",
                 "_end_data")

    def __init__(self, bus: "EventBus", subsystem: str, kind: str,
                 task: str, begin_data: Dict[str, Any]) -> None:
        self._bus = bus
        self._subsystem = subsystem
        self._kind = kind
        self._task = task
        self._begin_data = begin_data
        self._end_data: Dict[str, Any] = {}

    def note(self, **data: Any) -> "_Span":
        self._end_data.update(data)
        return self

    def __enter__(self) -> "_Span":
        self._bus.emit(self._subsystem, self._kind, phase="B",
                       task=self._task, **self._begin_data)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None and "error" not in self._end_data:
            self._end_data["error"] = exc_type.__name__
        self._bus.emit(self._subsystem, self._kind, phase="E",
                       task=self._task, **self._end_data)
        return False


class EventBus:
    """The single fan-out point for kernel instrumentation.

    One bus per :class:`~repro.hw.machine.Machine`; the kernel keeps an
    alias (``kernel.events``) and updates ``current_cpu`` as the
    simulated point of execution moves.  Emitters call :meth:`emit`
    (instant events) or :meth:`span` (nested begin/end pairs);
    observers register plain callables with :meth:`subscribe`.
    """

    def __init__(self, clock: Optional[Any] = None) -> None:
        #: object exposing ``elapsed_us`` — the machine's SimClock.
        self.clock = clock if clock is not None else _ZeroClock()
        #: the CPU id stamped on events that do not name one.
        self.current_cpu = 0
        self._subscribers: List[Callable[[Event], None]] = []
        self._track_stack: List[str] = []
        #: True when at least one subscriber is attached.  Emit sites
        #: with non-trivial payload preparation guard on this; it is a
        #: plain attribute (maintained by subscribe/unsubscribe), not a
        #: property, so the disabled check really is one attribute load
        #: — a property call would dominate the untraced fault path.
        self.active = False

    # -- subscription ------------------------------------------------

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Register *fn* to receive every event.  Idempotent."""
        if fn not in self._subscribers:
            self._subscribers.append(fn)
        self.active = True
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        """Remove *fn*; tolerates an already-removed subscriber."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass
        self.active = bool(self._subscribers)

    # -- track overrides ---------------------------------------------

    def push_track(self, name: str) -> None:
        """Route subsequent events to display lane *name* (e.g. the
        pageout daemon's loop pushes ``"daemon"``)."""
        self._track_stack.append(name)

    def pop_track(self) -> None:
        """Undo the most recent :meth:`push_track`."""
        if self._track_stack:
            self._track_stack.pop()

    # -- emission ----------------------------------------------------

    def emit(self, subsystem: str, kind: str, phase: str = "i",
             task: str = "", cpu: Optional[int] = None,
             **data: Any) -> Optional[Event]:
        """Publish one event; a no-op (returning None) when nobody is
        subscribed — no :class:`Event` is allocated."""
        subscribers = self._subscribers
        if not subscribers:
            return None
        if cpu is None:
            cpu = self.current_cpu
        if self._track_stack:
            track = self._track_stack[-1]
        else:
            track = f"cpu{cpu}"
        event = Event(self.clock.elapsed_us, cpu, track, phase,
                      subsystem, kind, task, data)
        for fn in subscribers:
            fn(event)
        return event

    def span(self, subsystem: str, kind: str, task: str = "",
             **data: Any):
        """A context manager emitting a ``B``/``E`` pair around its
        body.  Returns a shared null span when nobody is subscribed."""
        if not self._subscribers:
            return _NULL_SPAN
        return _Span(self, subsystem, kind, task, data)


class EventRecorder:
    """The simplest subscriber: append events to a bounded list.

    Usable directly as a context manager::

        with EventRecorder(kernel.events) as rec:
            task.write(addr, b"x")
        print(rec.events)
    """

    def __init__(self, bus: Optional[EventBus] = None,
                 capacity: int = 100_000) -> None:
        self.events: List[Event] = []
        self.capacity = capacity
        self.dropped = 0
        self._bus: Optional[EventBus] = None
        if bus is not None:
            self.attach(bus)

    def __call__(self, event: Event) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def attach(self, bus: EventBus) -> "EventRecorder":
        """Subscribe to *bus* (detaching from any previous one)."""
        if self._bus is not None:
            self.detach()
        self._bus = bus
        bus.subscribe(self)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __enter__(self) -> "EventRecorder":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.detach()
        return False
