"""Threads on CPUs: a cooperative scheduler.

Section 2: "A thread is the basic unit of CPU utilization.  It is
roughly equivalent to an independent program counter operating within a
task.  All threads within a task share access to all task resources."

The simulation schedules threads cooperatively: a thread body is a
Python generator whose ``yield``s are its preemption points.  The
scheduler multiplexes ready threads over the machine's CPUs
round-robin, performing a real ``pmap_activate`` on every switch — so
multiprogramming exercises exactly the machinery the paper discusses:
context-switch costs, TLB pollution across switches, SUN 3 context
competition above eight active tasks, and deferred TLB flushes draining
at timer ticks.

Usage::

    sched = Scheduler(kernel)

    def body(ctx):
        addr = ctx.task.vm_allocate(4096)
        ctx.write(addr, b"hello")
        yield                      # preemption point
        assert ctx.read(addr, 5) == b"hello"

    sched.spawn(task, body)
    sched.run()
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from typing import Callable, Generator, Optional

from repro.core.constants import FaultType
from repro.core.task import Task

_sched_ids = itertools.count(1)


class ThreadState(enum.Enum):
    """Lifecycle states of a scheduled thread."""
    READY = "ready"
    RUNNING = "running"
    #: Parked on a pager round trip; the CPU is lent to other threads.
    WAITING = "waiting"
    DONE = "done"
    FAILED = "failed"


class ThreadContext:
    """What a thread body sees: its task, and memory access that runs
    on whichever CPU the scheduler placed the thread on."""

    def __init__(self, scheduler: "Scheduler", task: Task,
                 thread) -> None:
        self.scheduler = scheduler
        self.task = task
        self.thread = thread
        self.cpu_id: Optional[int] = None

    def read(self, address: int, size: int) -> bytes:
        """Read bytes (faulting pages in as needed)."""
        self.scheduler._run_here(self)
        return self.task.read(address, size)

    def write(self, address: int, data: bytes) -> None:
        """Write bytes (faulting/copying pages as needed)."""
        self.scheduler._run_here(self)
        self.task.write(address, data)

    def rmw(self, address: int, delta: int = 1) -> int:
        """One read-modify-write increment on the thread's CPU."""
        self.scheduler._run_here(self)
        return self.scheduler.kernel.task_memory_rmw(self.task,
                                                     address, delta)


class SchedThread:
    """A schedulable thread: a core thread plus its generator body."""

    def __init__(self, scheduler: "Scheduler", task: Task,
                 body: Callable[[ThreadContext], Generator],
                 name: str = "") -> None:
        self.sched_id = next(_sched_ids)
        self.task = task
        self.thread = task.thread_create(
            name=name or f"sched{self.sched_id}")
        scheduler.kernel.server.register_thread(self.thread)
        self.context = ThreadContext(scheduler, task, self.thread)
        self.generator = body(self.context)
        self.state = ThreadState.READY
        self.slices = 0
        self.error: Optional[BaseException] = None

    def __repr__(self) -> str:
        return (f"SchedThread(#{self.sched_id}, {self.task.name}, "
                f"{self.state.value})")


class SchedulePolicy:
    """Strategy deciding which ready thread runs next.

    ``choose`` receives the ready queue (a sequence of
    :class:`SchedThread`, length >= 2 — trivial decisions are not
    offered) and returns the index to run.  Implementations must not
    mutate the queue.  Alternative policies (seeded-random, recording /
    replaying for systematic exploration) live in
    :mod:`repro.analysis.schedules`; this module only defines the
    protocol and the default so that ``sched`` never depends on the
    analysis package.
    """

    name = "policy"

    def choose(self, ready) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget accumulated state (for replays)."""


class RoundRobinPolicy(SchedulePolicy):
    """The historical default: always run the head of the queue."""

    name = "round-robin"

    def choose(self, ready) -> int:
        return 0


class Scheduler:
    """Multiplexing of threads over the machine's CPUs; round-robin by
    default, or any pluggable :class:`SchedulePolicy`."""

    def __init__(self, kernel, timer_tick_every: int = 8,
                 policy: Optional[SchedulePolicy] = None,
                 lend_pager_waits: bool = True) -> None:
        self.kernel = kernel
        self.ready: deque[SchedThread] = deque()
        self.threads: list[SchedThread] = []
        #: Deliver a timer tick to every CPU after this many slices
        #: (drains deferred TLB flushes — Section 5.2 case 2).
        self.timer_tick_every = timer_tick_every
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.context_switches = 0
        self.slices_run = 0
        #: The kernel's instrumentation bus; each slice publishes a
        #: ``sched/slice`` event just before placement.
        self.events = kernel.events
        #: The thread whose slice is currently executing (None between
        #: slices) and the re-entrancy guard for borrowed-CPU waits.
        self._current: Optional[SchedThread] = None
        self._wait_depth = 0
        # The kernel funnels pager backoff waits back through us so
        # unrelated ready threads can run during the stall.
        # ``lend_pager_waits=False`` opts out (the pre-v2 behavior:
        # backoffs idle the CPU) — used by serialized benchmark
        # controls.
        kernel.scheduler = self if lend_pager_waits else None

    # ------------------------------------------------------------------

    def spawn(self, task: Task,
              body: Callable[[ThreadContext], Generator],
              name: str = "") -> SchedThread:
        """Create a thread in *task* running *body* (a generator
        function taking a :class:`ThreadContext`)."""
        thread = SchedThread(self, task, body, name=name)
        self.threads.append(thread)
        self.ready.append(thread)
        return thread

    def _run_here(self, context: ThreadContext) -> None:
        """Bind the current thread's memory accesses to its CPU."""
        if context.cpu_id is not None:
            self.kernel.set_current_cpu(context.cpu_id)

    def _place(self, sched_thread: SchedThread, cpu) -> None:
        """Context-switch *cpu* to the thread's task."""
        if cpu.active_pmap is not sched_thread.task.pmap:
            self.context_switches += 1
            sched_thread.task.pmap.activate(sched_thread.thread, cpu)
        sched_thread.context.cpu_id = cpu.cpu_id

    def _advance(self, sched_thread: SchedThread) -> None:
        sched_thread.state = ThreadState.RUNNING
        sched_thread.slices += 1
        self.slices_run += 1
        try:
            next(sched_thread.generator)
        except StopIteration:
            sched_thread.state = ThreadState.DONE
        except Exception as exc:
            sched_thread.state = ThreadState.FAILED
            sched_thread.error = exc
        else:
            sched_thread.state = ThreadState.READY
            self.ready.append(sched_thread)

    def step(self) -> bool:
        """Run one slice on each CPU (as many as have work); returns
        False when nothing is runnable."""
        if not self.ready:
            return False
        for cpu in self.kernel.machine.cpus:
            if not self.ready:
                break
            if len(self.ready) > 1:
                index = self.policy.choose(tuple(self.ready))
                sched_thread = self.ready[index]
                del self.ready[index]
            else:
                sched_thread = self.ready.popleft()
            if sched_thread.thread.suspended:
                self.ready.append(sched_thread)
                continue
            if self.events.active:
                # Before _place, so an observer still sees the CPU the
                # thread last ran on (migration = causality transfer).
                self.events.emit(
                    "sched", "slice", task=sched_thread.task.name,
                    sched_thread=sched_thread, to_cpu=cpu.cpu_id,
                    from_cpu=sched_thread.context.cpu_id)
            self._place(sched_thread, cpu)
            self.kernel.set_current_cpu(cpu.cpu_id)
            self._current = sched_thread
            try:
                self._advance(sched_thread)
            finally:
                self._current = None
        if (self.timer_tick_every
                and self.slices_run % self.timer_tick_every == 0):
            self.kernel.machine.tick_all_timers()
        return True

    def service_pager_wait(self, deadline_us: float) -> int:
        """Lend the waiting thread's CPU to ready threads until
        *deadline_us* (simulated) or the ready queue drains; returns
        how many threads ran to completion on the borrowed time.

        Called by :meth:`repro.core.kernel.MachKernel.pager_backoff_wait`
        while a fault sits parked on its object's pending queue — the
        protocol-v2 continuation point: instead of the whole machine
        idling out a pager stall, unrelated tasks keep retiring work and
        the stalled fault resumes when the kernel's retry timer fires.

        Re-entrancy: a borrowed thread may itself hit a stalling pager;
        the nested wait then burns simulated time without borrowing
        further (one level of lending is what one spare context can
        honestly model, and it bounds recursion).
        """
        if self._wait_depth > 0 or not self.ready:
            return 0
        kernel = self.kernel
        clock = kernel.clock
        waiter = self._current
        saved_cpu = (waiter.context.cpu_id if waiter is not None
                     and waiter.context.cpu_id is not None
                     else kernel.current_cpu.cpu_id)
        cpu = kernel.machine.cpus[saved_cpu]
        if waiter is not None:
            waiter.state = ThreadState.WAITING
        self._wait_depth += 1
        tracked = self.events.active
        if tracked:
            # Borrowed slices get their own telemetry track: their
            # faults are independent latency samples, not children of
            # the waiter's still-open pager/call span.
            self.events.push_track(f"pager-wait-cpu{saved_cpu}")
        completed = 0
        no_progress = 0
        try:
            while self.ready and clock.now_us < deadline_us:
                borrowed = self.ready.popleft()
                if borrowed.thread.suspended:
                    self.ready.append(borrowed)
                    no_progress += 1
                    if no_progress > 2 * len(self.ready) + 4:
                        break
                    continue
                before = clock.now_us
                if tracked:
                    self.events.emit(
                        "sched", "borrowed_slice",
                        task=borrowed.task.name, to_cpu=cpu.cpu_id,
                        from_cpu=borrowed.context.cpu_id)
                self._place(borrowed, cpu)
                kernel.set_current_cpu(cpu.cpu_id)
                self._current = borrowed
                try:
                    self._advance(borrowed)
                finally:
                    self._current = waiter
                if borrowed.state is ThreadState.DONE:
                    completed += 1
                if clock.now_us <= before:
                    # Slices that burn no simulated time cannot reach
                    # the deadline; cap them so a queue of no-op
                    # yielders cannot spin forever.
                    no_progress += 1
                    if no_progress > 2 * len(self.ready) + 4:
                        break
                else:
                    no_progress = 0
        finally:
            self._wait_depth -= 1
            if tracked:
                self.events.pop_track()
            if waiter is not None:
                waiter.state = ThreadState.RUNNING
                # Restore the waiter's context (pmap + current CPU): the
                # borrowed threads may have switched the CPU away.
                self._place(waiter, cpu)
            kernel.set_current_cpu(saved_cpu)
        return completed

    def run(self, max_slices: int = 100_000,
            raise_on_failure: bool = True) -> None:
        """Run until every thread finishes (or the slice budget is
        spent, which raises — a runaway loop in a thread body)."""
        budget = max_slices
        while self.step():
            budget -= 1
            if budget <= 0:
                raise RuntimeError(
                    f"scheduler exceeded {max_slices} slices; "
                    f"{len(self.ready)} threads still ready")
        if raise_on_failure:
            for sched_thread in self.threads:
                if sched_thread.state is ThreadState.FAILED:
                    raise sched_thread.error

    @property
    def all_done(self) -> bool:
        """True when every spawned thread has finished."""
        return all(t.state in (ThreadState.DONE, ThreadState.FAILED)
                   for t in self.threads)

    def __repr__(self) -> str:
        states = {}
        for t in self.threads:
            states[t.state.value] = states.get(t.state.value, 0) + 1
        return f"Scheduler({states}, switches={self.context_switches})"
