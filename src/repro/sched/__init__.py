"""Cooperative thread scheduling over the simulated CPUs."""

from repro.sched.scheduler import (
    RoundRobinPolicy,
    SchedThread,
    SchedulePolicy,
    Scheduler,
    ThreadContext,
    ThreadState,
)

__all__ = [
    "RoundRobinPolicy",
    "SchedThread",
    "SchedulePolicy",
    "Scheduler",
    "ThreadContext",
    "ThreadState",
]
