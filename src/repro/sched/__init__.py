"""Cooperative thread scheduling over the simulated CPUs."""

from repro.sched.scheduler import (
    SchedThread,
    Scheduler,
    ThreadContext,
    ThreadState,
)

__all__ = ["SchedThread", "Scheduler", "ThreadContext", "ThreadState"]
