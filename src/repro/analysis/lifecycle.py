"""Resource lifecycle lint: acquire/release pairing along all paths.

The kernel juggles four kinds of manually-managed resources, each with
an acquire/release discipline the type system cannot see:

* **free-pool slots** — swap slots and physical frames popped off a
  ``_free`` list (``slot = x._free.pop()``) and returned with
  ``x._free.append(slot)`` / ``x.free_slot(slot)``.  PR 2's swap-slot
  leak (a failed ``write_direct`` dropped a freshly popped slot) is
  exactly this kind;
* **vm_object references** — ``obj.reference()`` / manager ``shadow``
  / ``create_*`` paired with ``objects.deallocate(obj)``;
* **resident pages** — ``resident.allocate(...)`` returns a page that
  is *off every queue* (and usually busy) until it is activated,
  wired, or freed; an exception in that window strands the frame
  forever;
* **holding maps and port rights** — ``AddressMap(...)`` / ``Port(...)``
  constructions paired with ``.destroy()``.

The pass runs a forward dataflow over each function's CFG
(:mod:`repro.analysis.cfg`).  Each local variable holding a resource
moves through ``ACQUIRED -> RELEASED | ESCAPED``; joining paths that
disagree yields ``TOP`` (unknown — deliberately not reported, so
correlated acquire/release conditions don't produce noise).  Reported:

* ``leak-on-exception-path`` — still ACQUIRED in a state reaching the
  synthetic exception exit (all kinds);
* ``leak-on-return`` — still ACQUIRED at normal exit (free-pool slots
  only; long-lived kinds routinely outlive their creating function);
* ``double-release`` — released while already RELEASED.

Escape analysis is ownership-transfer-shaped: returning/yielding a
variable, storing it into an attribute, subscript, or container
(``.append``/``.add``/...), aliasing it, entering it into a map
(``allocate(vm_object=...)``), or passing it to a
constructor all end tracking; passing it as a plain call argument is a
*borrow* and does not (that borrow rule is what catches leaks like a
holding map dropped when ``copy_region`` raises mid-send).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.cfg import (EXC_EXIT, EXIT, CFGNode, build_cfg,
                                iter_functions)
from repro.analysis.flow import Finding, iter_source_modules, solve_forward

PASS_NAME = "lifecycle"

#: Part of the incremental-cache key: bump on any behavior change.
PASS_VERSION = "2"

# -- resource-kind table --------------------------------------------------

#: kind -> report a still-ACQUIRED resource at the *normal* exit too?
LEAK_AT_RETURN = {"free-pool-slot"}
#: kinds never reported for leaks at all (pairing-only disciplines).
NO_LEAK_REPORT = {"page-wire"}

#: method names that store their argument somewhere (ownership moves).
ESCAPING_METHODS = {"append", "add", "insert", "setdefault", "put",
                    "push", "register", "extend", "appendleft"}

#: receiver names that make a bare ``.allocate(...)`` a resident-page
#: acquisition (``vm.resident.allocate`` vs ``vm_map.allocate``).
RESIDENT_RECEIVERS = {"resident"}

#: constructors whose result is a tracked resource.
CONSTRUCTORS = {"AddressMap": "holding-map", "Port": "port-right",
                "VMObject": "vm-object-ref"}

#: method names acquiring a vm_object reference into their result.
OBJECT_FACTORIES = {"create_internal", "create_for_pager", "shadow"}

#: resident-page releases: the page lands on a queue / the free pool.
PAGE_COMMITS = {"activate", "deactivate", "free"}

ACQ, REL, ESC, TOP = "ACQ", "REL", "ESC", "TOP"


@dataclass(frozen=True)
class _Fact:
    kind: str
    status: str
    line: int        # acquire line (kept through status changes)


_State = dict  # var name -> _Fact (immutability by convention: copy on write)


def _join(a: _State, b: _State) -> _State:
    if a == b:
        return a
    out: _State = dict(a)
    for var, fact in b.items():
        mine = out.get(var)
        if mine is None:
            out[var] = fact
        elif mine != fact:
            if mine.status == fact.status and mine.kind == fact.kind:
                out[var] = _Fact(mine.kind, mine.status,
                                 min(mine.line, fact.line))
            else:
                out[var] = _Fact(mine.kind, TOP, min(mine.line, fact.line))
    return out


# -- AST pattern matching -------------------------------------------------

def _attr_chain(expr: ast.AST) -> list[str]:
    """``self.vm.resident.allocate`` -> ["self", "vm", "resident",
    "allocate"]; [] when the expression is not a plain chain."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return list(reversed(parts))
    return []


def _walk_no_lambda(node: ast.AST) -> Iterator[ast.AST]:
    """ast.walk that does not descend into lambdas / nested defs —
    their bodies do not execute at this statement."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.Lambda, ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def _acquire_kind(value: ast.AST) -> Optional[str]:
    """Kind acquired when *value* (an assignment RHS) runs, or None."""
    if not isinstance(value, ast.Call):
        return None
    chain = _attr_chain(value.func)
    if not chain:
        return None
    if len(chain) == 1:
        return CONSTRUCTORS.get(chain[0])
    tail = chain[-1]
    if tail == "pop" and chain[-2] == "_free":
        return "free-pool-slot"
    if tail in OBJECT_FACTORIES:
        return "vm-object-ref"
    if tail == "allocate" and chain[-2] in RESIDENT_RECEIVERS:
        return "resident-page"
    return None


@dataclass
class _Event:
    op: str          # "release" | "escape" | "havoc" | "acq-receiver"
    var: str
    kind: str = ""   # for releases: the discipline being released
    line: int = 0


def _call_events(call: ast.Call, standalone: bool) -> list[_Event]:
    events: list[_Event] = []
    chain = _attr_chain(call.func)
    line = call.lineno
    args = call.args

    def name_args() -> list[str]:
        out = [a.id for a in args if isinstance(a, ast.Name)]
        out += [kw.value.id for kw in call.keywords
                if isinstance(kw.value, ast.Name)]
        return out

    if chain and len(chain) == 1:
        # Bare-name call; constructors take ownership of their args.
        if chain[0][:1].isupper():
            events += [_Event("escape", v, line=line) for v in name_args()]
        return events
    if not chain:
        # Complex callee (call result, subscript): be conservative,
        # its arguments escape.
        return [_Event("escape", a.id, line=call.lineno)
                for a in args if isinstance(a, ast.Name)]

    tail = chain[-1]
    arg0 = args[0].id if args and isinstance(args[0], ast.Name) else None
    receiver = chain[-2] if len(chain) >= 2 else None

    if tail == "append" and receiver == "_free":
        if arg0:
            events.append(_Event("release", arg0, "free-pool-slot", line))
    elif tail == "free_slot" and arg0:
        events.append(_Event("release", arg0, "free-pool-slot", line))
    elif tail == "deallocate" and len(args) == 1 and arg0:
        events.append(_Event("release", arg0, "vm-object-ref", line))
    elif tail == "free" and len(args) == 1 and arg0:
        events.append(_Event("release", arg0, "resident-page", line))
    elif tail in PAGE_COMMITS and len(args) == 1 and arg0:
        events.append(_Event("release", arg0, "resident-page", line))
    elif tail == "wire" and len(args) == 1 and arg0:
        # Commits the page (resident side) and opens a wire count.
        events.append(_Event("release", arg0, "resident-page", line))
        events.append(_Event("havoc", arg0, line=line))
    elif tail == "unwire" and len(args) == 1 and arg0:
        events.append(_Event("release", arg0, "page-wire", line))
    elif tail == "destroy" and not args and receiver \
            and len(chain) == 2:
        # Bare-name receiver only: `holder.destroy()` releases the
        # local, `region.holding.destroy()` releases state we don't
        # track (the attribute, not a local).
        events.append(_Event("release", receiver, "destroyable", line))
    elif tail == "reference" and not args and receiver \
            and receiver != "self" and standalone and len(chain) == 2:
        events.append(_Event("acq-receiver", receiver, "vm-object-ref",
                             line))
    elif tail in ESCAPING_METHODS:
        events += [_Event("escape", v, line=line) for v in name_args()]
    elif tail == "allocate":
        # `map.allocate(vm_object=obj)` stores the object into the new
        # map entry: ownership (the caller's reference) moves with it.
        events += [_Event("escape", kw.value.id, line=line)
                   for kw in call.keywords
                   if kw.arg == "vm_object"
                   and isinstance(kw.value, ast.Name)]
    return events


def _names_under(expr: ast.AST) -> list[str]:
    return [n.id for n in _walk_no_lambda(expr)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)]


def _stmt_events(node: CFGNode, summary_events=None
                 ) -> tuple[list[_Event],
                            Optional[tuple[str, str, int]]]:
    """(ordered events, optional (var, kind, line) acquisition)."""
    stmt = node.stmt
    events: list[_Event] = []
    acquire: Optional[tuple[str, str, int]] = None

    calls = [c for expr in node.exprs for c in _walk_no_lambda(expr)
             if isinstance(c, ast.Call)]
    for call in calls:
        # "standalone" = the call IS the whole statement: only then
        # does `obj.reference()` leave its new reference in obj's
        # hands (a nested `f(x=obj.reference())` hands it to f).
        standalone = isinstance(stmt, ast.Expr) and call is stmt.value
        direct = _call_events(call, standalone)
        events += direct
        if summary_events is not None:
            # Callee-summary effects apply only to arguments the
            # syntactic table did not already handle, so the same
            # release is never applied twice.
            events += summary_events(call, {ev.var for ev in direct})

    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            kind = _acquire_kind(stmt.value)
            if kind is not None:
                acquire = (target.id, kind, stmt.lineno)
            else:
                if isinstance(stmt.value, ast.Name):
                    events.append(_Event("escape", stmt.value.id,
                                         line=stmt.lineno))
                events.append(_Event("havoc", target.id,
                                     line=stmt.lineno))
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Storing into a structure: the stored names escape.
            events += [_Event("escape", v, line=stmt.lineno)
                       for v in _names_under(stmt.value)]
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    events.append(_Event("havoc", elt.id,
                                         line=stmt.lineno))
    elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target,
                                                        ast.Name):
        events.append(_Event("havoc", stmt.target.id, line=stmt.lineno))
    elif isinstance(stmt, ast.Return) and stmt.value is not None:
        events += [_Event("escape", v, line=stmt.lineno)
                   for v in _names_under(stmt.value)]
    elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, (ast.Yield, ast.YieldFrom, ast.Await)):
        events += [_Event("escape", v, line=stmt.lineno)
                   for v in _names_under(stmt.value)]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for n in _walk_no_lambda(stmt.target):
            if isinstance(n, ast.Name):
                events.append(_Event("havoc", n.id, line=stmt.lineno))
    elif isinstance(stmt, ast.Delete):
        for tgt in stmt.targets:
            if isinstance(tgt, ast.Name):
                events.append(_Event("havoc", tgt.id, line=stmt.lineno))
    return events, acquire


# -- the pass itself ------------------------------------------------------

#: callee must-exit states that mean "the callee released this
#: argument for you" (interprocedural generalization of the
#: syntactic release table above).
_SUMMARY_RELEASES = {"page:free": "resident-page",
                     "vmobject:deallocated": "vm-object-ref"}


class _FunctionChecker:
    def __init__(self, module: str, qualname: str, func: ast.AST,
                 ctx=None, info=None) -> None:
        self.module = module
        self.qualname = qualname
        self.func = func
        self.ctx = ctx       # typestate.AnalysisContext or None
        self.info = info     # callgraph.FunctionInfo or None
        self.findings: dict[tuple, Finding] = {}

    def _summary_events(self, call: ast.Call,
                        direct_vars: set[str]) -> list[_Event]:
        """Ownership effects the callee's summary proves: arguments
        it escapes stop being tracked (handoff), arguments it always
        releases count as released here.  This replaces the old
        per-function handoff special cases — a helper that stores or
        frees its parameter is now recognized wherever it is called.
        """
        if self.ctx is None or self.info is None:
            return []
        pairs = self.ctx.lookup(call, self.info)
        if not pairs:
            return []
        from repro.analysis.callgraph import _attr_chain as _cg_chain
        chain = _cg_chain(call.func)
        receiver_var = chain[0] if len(chain) == 2 else None
        events: list[_Event] = []
        must_release: dict[str, set] = {}
        seen: dict[str, int] = {}
        for fid, summary in pairs:
            bound = self.ctx.graph.bind_args(fid, call, receiver_var)
            for param, var in bound.items():
                if var in direct_vars:
                    continue
                # Escaping is a may-fact: ending tracking can only
                # hide a leak, never invent one (the borrow rule's
                # direction of safety).
                if param in summary.escapes:
                    events.append(_Event("escape", var,
                                         line=call.lineno))
                kind = _SUMMARY_RELEASES.get(
                    summary.must_exit_state(param) or "")
                if kind is not None:
                    must_release.setdefault(var, set()).add(kind)
                    seen[var] = seen.get(var, 0) + 1
        for var, kinds in sorted(must_release.items()):
            if len(kinds) == 1 and seen[var] == len(pairs):
                events.append(_Event("release", var, kinds.pop(),
                                     call.lineno))
        return events

    def _report(self, rule: str, line: int, message: str) -> None:
        key = (rule, line, message)
        self.findings.setdefault(key, Finding(
            PASS_NAME, self.module, line, rule, self.qualname, message))

    def _transfer(self, node: CFGNode,
                  state: _State) -> tuple[_State, _State]:
        events, acquire = _stmt_events(node, self._summary_events)
        after = dict(state)
        receiver_acqs: list[_Event] = []
        for ev in events:
            fact = after.get(ev.var)
            if ev.op == "havoc":
                after.pop(ev.var, None)
            elif ev.op == "escape":
                if fact is not None and fact.status in (ACQ, TOP):
                    after[ev.var] = _Fact(fact.kind, ESC, fact.line)
            elif ev.op == "acq-receiver":
                # Applied to the normal out-state only: if the
                # acquiring call itself raised, no reference was taken.
                receiver_acqs.append(ev)
            elif ev.op == "release":
                if fact is None:
                    after[ev.var] = _Fact(ev.kind, REL, ev.line)
                elif fact.status == REL and (fact.kind == ev.kind
                                             or ev.kind == "destroyable"):
                    self._report(
                        "double-release", ev.line,
                        f"{ev.var!r} ({fact.kind}) released again; "
                        f"already released on a path reaching here")
                elif fact.status in (ACQ, TOP):
                    after[ev.var] = _Fact(fact.kind, REL, fact.line)
        # The exceptional out-state: the statement may have raised
        # before completing, so releases/escapes are honoured (under-
        # approximating leaks, never inventing them) but the acquire
        # has not happened.
        exc_out = after
        norm_out = after
        if acquire is not None or receiver_acqs:
            norm_out = dict(after)
            for ev in receiver_acqs:
                norm_out[ev.var] = _Fact(ev.kind, ACQ, ev.line)
            if acquire is not None:
                var, kind, line = acquire
                norm_out[var] = _Fact(kind, ACQ, line)
        return norm_out, exc_out

    def _check_exit_edge(self, state: _State, via_line: int,
                         exceptional: bool) -> None:
        for var, fact in sorted(state.items()):
            if fact.status != ACQ or fact.kind in NO_LEAK_REPORT:
                continue
            if not exceptional and fact.kind not in LEAK_AT_RETURN:
                continue
            if exceptional:
                rule = "leak-on-exception-path"
                how = (f"still held when line {via_line} can raise"
                       if via_line else "still held when the function "
                       "can unwind")
            else:
                rule = "leak-on-return"
                how = f"still held at the return on line {via_line}" \
                    if via_line else "still held at function exit"
            # Key on the acquisition, not the escaping edge: one
            # finding per leaked acquire, at its most actionable line.
            key = (rule, var, fact.line)
            self.findings.setdefault(key, Finding(
                PASS_NAME, self.module, fact.line, rule, self.qualname,
                f"{fact.kind} {var!r} acquired here is never released "
                f"or handed off: {how}"))

    def check(self) -> list[Finding]:
        cfg = build_cfg(self.func)
        states = solve_forward(cfg, {}, self._transfer, _join)
        # Leaks are judged per exit *edge*, not on the joined exit
        # state: joining a leaking path with a clean one would yield
        # TOP and hide the leak.
        for node in cfg:
            if node.nid not in states:
                continue                      # unreachable
            out_n, out_e = self._transfer(node, states[node.nid])
            if EXC_EXIT in node.exc:
                self._check_exit_edge(out_e, node.lineno,
                                      exceptional=True)
            if EXC_EXIT in node.succ:         # raise / finally rethrow
                self._check_exit_edge(out_n, node.lineno,
                                      exceptional=True)
            if EXIT in node.succ:
                self._check_exit_edge(out_n, node.lineno,
                                      exceptional=False)
        return list(self.findings.values())


def check_module(module: str, tree: ast.AST, ctx=None) -> list[Finding]:
    """Run the lifecycle discipline over one parsed module.  With a
    :class:`repro.analysis.typestate.AnalysisContext`, callee
    summaries supply interprocedural ownership handoffs (escapes and
    must-releases); without one the syntactic tables stand alone."""
    findings: list[Finding] = []
    for qualname, func in iter_functions(tree):
        info = ctx.caller_info(module, qualname) if ctx is not None \
            else None
        findings += _FunctionChecker(module, qualname, func,
                                     ctx, info).check()
    return findings


def in_scope(module: str, package: str = "repro") -> bool:
    """Lifecycle applies to the whole package."""
    del package
    return True


def run_pass(root: Optional[Path] = None,
             package: str = "repro") -> list[Finding]:
    """Lifecycle-lint every module in the source tree."""
    findings: list[Finding] = []
    for module, _path, tree in iter_source_modules(root, package):
        findings += check_module(module, tree)
    return findings
