"""Interprocedural typestate pass: declarative VM protocol specs.

The paper's machine-independent layer works because every component
honors unwritten protocols: a page cycles free→active→inactive→
laundering→free and is never touched once freed; a ``vm_object``
reference obtained from the manager is dead after ``deallocate``; a
map entry unlinked from its map must not re-enter map structure
operations; and a pmap mutation that skipped its TLB shootdown
(``remove(..., shoot=False)``) owes one before the next yield.  The
PR 6 flow passes cannot see a violation that spans a call — a helper
that frees a page its caller still touches looks clean to both
functions in isolation.

This pass closes that hole.  Protocols are declarative
:class:`ProtocolSpec` tables (states, transitions, violations); the
checker runs each function's CFG through the shared forward solver
(:func:`repro.analysis.flow.solve_forward`), applying protocol
*operations* classified from call sites.  Calls resolved by the call
graph apply the callee's :class:`~repro.analysis.callgraph.Summary` —
the parameter states the callee definitely establishes by exit —
computed bottom-up over SCCs by
:func:`~repro.analysis.callgraph.compute_summaries`, so a protocol
violation split across any number of calls is still caught.  Joining
paths that disagree yields an unknown state that is deliberately not
reported (same noise discipline as the lifecycle pass).

Shipped rules (each has a known-bad fixture in
``tests/data/flow_fixtures/``):

* ``page-use-after-free`` / ``page-double-free`` /
  ``page-free-while-wired`` — the resident-page lifecycle;
* ``object-use-after-deallocate`` / ``object-double-deallocate`` —
  the vm_object reference protocol;
* ``entry-use-after-unlink`` — map entries re-entering map structure
  ops (or being written) after ``_unlink``; teardown *reads* of an
  unlinked entry are the sanctioned pattern and stay legal;
* ``shootdown-before-yield`` — a pmap left TLB-dirty by
  ``remove(..., shoot=False)`` (directly or via a callee that always
  exits dirty) crossing a yield point before the covering
  ``system.shootdown(...)`` / ``system.update()``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.analysis.callgraph import (
    CallGraph, EMPTY_SUMMARY, FunctionInfo, Summary, SummaryLookup,
    _attr_chain, build_callgraph, compute_summaries,
)
from repro.analysis.cfg import EXC_EXIT, EXIT, CFGNode, build_cfg, \
    iter_functions
from repro.analysis.flow import Finding, iter_source_modules, solve_forward
from repro.analysis.layering import _strip

PASS_NAME = "typestate"

#: Bumped when the pass logic changes: part of every cache key, so a
#: new rule invalidates stale cached results.
PASS_VERSION = "1"

#: Top-level repro subpackages outside the simulated kernel: protocol
#: ops never originate there, and analysis tooling talking *about*
#: pages must not be held to the page protocol.
EXEMPT = ("analysis", "bench", "cli", "viz", "__main__")

TOP = "<top>"


# -- declarative protocol specs --------------------------------------------

@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol: states, transitions, and what counts as a crime.

    ``track_on`` starts tracking an untracked variable when an op hits
    it (``resident.free(p)`` proves ``p`` is a page, now ``free``);
    ``transitions`` move tracked state; ``violations`` map ``(op,
    state)`` to a reported rule; any other ``(op, state)`` pair
    degrades to unknown, which is never reported.  ``op_for_state``
    translates a callee's must-exit state back into the op applied at
    the call site, so interprocedural effects run through the same
    violation tables as direct calls.
    """

    name: str
    kind: str                                  # lifecycle resource kind
    track_on: dict = field(default_factory=dict)
    transitions: dict = field(default_factory=dict)
    violations: dict = field(default_factory=dict)
    dead_states: frozenset = frozenset()
    use_rule: tuple = ()                       # (rule, message)
    use_writes_only: bool = False
    op_for_state: dict = field(default_factory=dict)
    yield_hazard: tuple = ()                   # (state, rule, message)


_UAF = ("page-use-after-free",
        "page {var!r} was freed on line {line} and is used here; a "
        "freed page belongs to the free pool and may be reallocated "
        "under you")

PAGE_PROTOCOL = ProtocolSpec(
    name="page", kind="resident-page",
    track_on={"page-free": "free", "page-wire": "wired",
              "page-activate": "active", "page-deactivate": "inactive"},
    transitions={
        ("page-activate", "busy"): "active",
        ("page-activate", "active"): "active",
        ("page-activate", "inactive"): "active",
        ("page-deactivate", "busy"): "inactive",
        ("page-deactivate", "active"): "inactive",
        ("page-deactivate", "inactive"): "inactive",
        ("page-wire", "busy"): "wired",
        ("page-wire", "active"): "wired",
        ("page-wire", "inactive"): "wired",
        ("page-wire", "wired"): "wired",
        ("page-free", "busy"): "free",
        ("page-free", "active"): "free",
        ("page-free", "inactive"): "free",
    },
    violations={
        ("page-free", "free"): (
            "page-double-free",
            "page {var!r} freed again; already freed on line {line}"),
        ("page-free", "wired"): (
            "page-free-while-wired",
            "page {var!r} wired on line {line} is freed here without "
            "an unwire; ResidentPageTable.free refuses wired pages"),
        ("page-activate", "free"): _UAF,
        ("page-deactivate", "free"): _UAF,
        ("page-wire", "free"): _UAF,
        ("page-unwire", "free"): _UAF,
        ("page-touch", "free"): _UAF,
    },
    dead_states=frozenset({"free"}),
    use_rule=_UAF,
    op_for_state={"free": "page-free", "active": "page-activate",
                  "inactive": "page-deactivate", "wired": "page-wire"},
)

_UAD = ("object-use-after-deallocate",
        "vm_object {var!r} was deallocated on line {line}; this "
        "reference is dead and the object may already be terminated")

OBJECT_PROTOCOL = ProtocolSpec(
    name="vmobject", kind="vm-object-ref",
    track_on={"obj-deallocate": "deallocated", "obj-reference": "live"},
    transitions={
        ("obj-deallocate", "live"): "deallocated",
        ("obj-reference", "live"): "live",
    },
    violations={
        ("obj-deallocate", "deallocated"): (
            "object-double-deallocate",
            "vm_object {var!r} deallocated again; this reference was "
            "already dropped on line {line} (over-release terminates "
            "the object under other holders)"),
        ("obj-reference", "deallocated"): _UAD,
    },
    dead_states=frozenset({"deallocated"}),
    use_rule=_UAD,
    op_for_state={"deallocated": "obj-deallocate",
                  "live": "obj-reference"},
)

ENTRY_PROTOCOL = ProtocolSpec(
    name="entry", kind="map-entry",
    track_on={"entry-unlink": "unlinked"},
    transitions={("entry-unlink", "unlinked"): "unlinked"},
    violations={
        ("entry-map-op", "unlinked"): (
            "entry-use-after-unlink",
            "map entry {var!r} was unlinked on line {line} and "
            "re-enters a map structure operation here; in Mach the "
            "entry is back in the zone by now"),
    },
    dead_states=frozenset({"unlinked"}),
    use_rule=("entry-use-after-unlink",
              "map entry {var!r} unlinked on line {line} is written "
              "here; only teardown reads of a dead entry are legal"),
    use_writes_only=True,
    op_for_state={"unlinked": "entry-unlink"},
)

PMAP_PROTOCOL = ProtocolSpec(
    name="pmap", kind="pmap-tlb",
    track_on={"pmap-mutate-unshot": "dirty"},
    transitions={
        ("pmap-mutate-unshot", "dirty"): "dirty",
        ("pmap-mutate-unshot", "clean"): "dirty",
        ("pmap-shoot", "dirty"): "clean",
        ("pmap-shoot", "clean"): "clean",
    },
    op_for_state={"dirty": "pmap-mutate-unshot", "clean": "pmap-shoot"},
    yield_hazard=(
        "dirty", "shootdown-before-yield",
        "pmap {var!r} was mutated with shoot=False on line {line} and "
        "this statement can yield the CPU before the covering "
        "shootdown; another processor can observe the stale TLB entry"),
)

PROTOCOLS: dict[str, ProtocolSpec] = {
    spec.name: spec for spec in (
        PAGE_PROTOCOL, OBJECT_PROTOCOL, ENTRY_PROTOCOL, PMAP_PROTOCOL)
}


def _op_proto_table() -> dict[str, ProtocolSpec]:
    table: dict[str, ProtocolSpec] = {}
    for spec in PROTOCOLS.values():
        for op in spec.track_on:
            table[op] = spec
        for op, _state in list(spec.transitions) + list(spec.violations):
            table[op] = spec
    table["pmap-shoot-all"] = PMAP_PROTOCOL
    return table


#: op name -> owning protocol spec
_OP_PROTO = _op_proto_table()


# -- op classification ------------------------------------------------------

#: ``x.resident.<op>(page)`` — the resident page table's queue ops.
_PAGE_OPS = {"free": "page-free", "activate": "page-activate",
             "deactivate": "page-deactivate", "wire": "page-wire",
             "unwire": "page-unwire", "insert": "page-touch",
             "remove": "page-touch", "rename": "page-touch"}

#: Entering the fault handler can block on a pager round-trip; every
#: ThreadContext memory access is a preemption point (same seeds as the
#: race.py atomicity lint, now propagated across module boundaries).
_FAULT_ENTRY = ("vm_fault", "resolve_task_fault")
_CTX_METHODS = ("read", "write", "rmw")

_ESCAPING_METHODS = {"append", "add", "insert", "setdefault", "put",
                     "push", "register", "extend", "appendleft"}


@dataclass(frozen=True)
class _Op:
    op: str
    var: str
    line: int


def _const_false(call: ast.Call, kwarg: str) -> bool:
    for kw in call.keywords:
        if kw.arg == kwarg and isinstance(kw.value, ast.Constant) \
                and kw.value.value is False:
            return True
    return False


def classify_call(call: ast.Call, cls: Optional[str]) -> list[_Op]:
    """Protocol ops a call applies directly to named local variables."""
    chain = _attr_chain(call.func)
    if len(chain) < 2:
        return []
    tail, recv = chain[-1], chain[-2]
    line = call.lineno
    args = call.args
    arg0 = args[0].id if args and isinstance(args[0], ast.Name) else None
    ops: list[_Op] = []
    if recv == "resident" and tail in _PAGE_OPS and arg0:
        ops.append(_Op(_PAGE_OPS[tail], arg0, line))
    elif tail == "deallocate" and len(args) == 1 and arg0 \
            and (recv == "objects"
                 or (recv == "self" and cls == "VMObjectManager")):
        ops.append(_Op("obj-deallocate", arg0, line))
    elif tail == "reference" and not args and len(chain) == 2 \
            and chain[0] != "self":
        ops.append(_Op("obj-reference", chain[0], line))
    elif tail == "_unlink" and arg0:
        ops.append(_Op("entry-unlink", arg0, line))
    elif tail in ("_link", "clip_start", "clip_end", "copy_entry_cow") \
            and arg0:
        ops.append(_Op("entry-map-op", arg0, line))
    elif tail == "remove" and len(chain) == 2 \
            and _const_false(call, "shoot"):
        ops.append(_Op("pmap-mutate-unshot", chain[0], line))
    elif tail == "shootdown" and arg0:
        ops.append(_Op("pmap-shoot", arg0, line))
    elif tail == "update" and recv == "system" and not args:
        ops.append(_Op("pmap-shoot-all", "", line))
    return ops


def classify_acquire(value: ast.AST,
                     cls: Optional[str]) -> Optional[tuple[str, str]]:
    """``(protocol, state)`` freshly acquired by an assignment RHS."""
    if not isinstance(value, ast.Call):
        return None
    chain = _attr_chain(value.func)
    if len(chain) < 2:
        return None
    tail, recv = chain[-1], chain[-2]
    if tail == "allocate" and recv == "resident":
        return ("page", "busy")
    if tail in ("create_internal", "create_for_pager", "shadow") \
            and (recv == "objects"
                 or (recv == "self" and cls == "VMObjectManager")):
        return ("vmobject", "live")
    return None


def _ctx_param_names(func: ast.AST) -> frozenset[str]:
    names = set()
    for arg in (list(func.args.posonlyargs) + list(func.args.args)
                + list(func.args.kwonlyargs)):
        ann = arg.annotation
        if arg.arg == "ctx" \
                or (isinstance(ann, ast.Name)
                    and ann.id == "ThreadContext") \
                or (isinstance(ann, ast.Attribute)
                    and ann.attr == "ThreadContext") \
                or (isinstance(ann, ast.Constant)
                    and ann.value == "ThreadContext"):
            names.add(arg.arg)
    return frozenset(names)


def _is_yield_primitive(call: ast.Call,
                        ctx_params: frozenset[str]) -> bool:
    chain = _attr_chain(call.func)
    if not chain:
        return False
    if chain[-1] in _FAULT_ENTRY:
        return True
    return (len(chain) == 2 and chain[0] in ctx_params
            and chain[1] in _CTX_METHODS)


def _walk_no_lambda(node: ast.AST):
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.Lambda, ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue
            stack.append(child)


# -- dataflow facts ----------------------------------------------------------

@dataclass(frozen=True)
class _Fact:
    proto: str       # protocol name
    state: str       # concrete state or TOP
    line: int        # line that established the current state
    acquired: bool = False   # freshly acquired in this function


_State = dict    # var -> _Fact; copied on write


def _join(a: _State, b: _State) -> _State:
    if a == b:
        return a
    out: _State = dict(a)
    # Untracked on one path means the state is unknown there, not
    # absent: a page freed on one branch only must join to unknown
    # (never reported), not stay "free".
    for var, mine in a.items():
        if var not in b and mine.state != TOP:
            out[var] = _Fact(mine.proto, TOP, mine.line)
    for var, fact in b.items():
        mine = out.get(var)
        if mine is None:
            out[var] = _Fact(fact.proto, TOP, fact.line) \
                if fact.state != TOP else fact
        elif mine != fact:
            if mine.proto == fact.proto and mine.state == fact.state:
                out[var] = _Fact(mine.proto, mine.state,
                                 min(mine.line, fact.line),
                                 mine.acquired and fact.acquired)
            else:
                out[var] = _Fact(mine.proto, TOP,
                                 min(mine.line, fact.line))
    return out


# -- the engine: one function, summary mode or check mode -------------------

class _FunctionEngine:
    """Shared transfer function over one function's CFG.

    In *check mode* (``run_check``) it emits findings — but only
    during a final sweep over fixpoint states, never from the
    intermediate states the solver passes through.  In *summary mode*
    (``run_summary``) it harvests parameter exit states, escapes, and
    may-yield for the bottom-up fixpoint.
    """

    def __init__(self, module: str, qualname: str, func: ast.AST,
                 info: Optional[FunctionInfo], graph: CallGraph,
                 lookup: SummaryLookup) -> None:
        self.module = module
        self.qualname = qualname
        self.func = func
        self.info = info
        self.graph = graph
        self.lookup = lookup
        self.findings: dict[tuple, Finding] = {}
        self.escaped: set[str] = set()
        self.saw_yield = False
        self._reporting = False
        self._ctx_params = _ctx_param_names(func)
        self._cls = info.cls if info is not None else None

    # -- reporting ----------------------------------------------------------

    def _report(self, rule: str, template: str, var: str,
                line: int, origin: int) -> None:
        if not self._reporting:
            return
        key = (rule, line, var)
        self.findings.setdefault(key, Finding(
            PASS_NAME, self.module, line, rule, self.qualname,
            template.format(var=var, line=origin)))

    # -- op application ------------------------------------------------------

    def _apply_op(self, state: _State, op: _Op) -> _State:
        spec = _OP_PROTO.get(op.op)
        if spec is None:
            return state
        if op.op == "pmap-shoot-all":
            out = dict(state)
            for var, fact in state.items():
                if fact.proto == "pmap" and fact.state == "dirty":
                    out[var] = _Fact("pmap", "clean", op.line)
            return out
        fact = state.get(op.var)
        if fact is None:
            target = spec.track_on.get(op.op)
            if target is not None:
                out = dict(state)
                out[op.var] = _Fact(spec.name, target, op.line)
                return out
            return state
        if fact.proto != spec.name or fact.state == TOP:
            # Another protocol claims this name, or paths disagree:
            # degrade quietly rather than invent a violation.
            out = dict(state)
            out[op.var] = _Fact(fact.proto, TOP, fact.line)
            return out
        crime = spec.violations.get((op.op, fact.state))
        if crime is not None:
            rule, template = crime
            self._report(rule, template, op.var, op.line, fact.line)
            return state
        nxt = spec.transitions.get((op.op, fact.state))
        out = dict(state)
        if nxt is not None:
            out[op.var] = _Fact(spec.name, nxt, op.line, fact.acquired)
        else:
            out[op.var] = _Fact(spec.name, TOP, fact.line)
        return out

    # -- summary application at call sites -----------------------------------

    def _summary_ops(self, call: ast.Call,
                     direct_vars: set[str]) -> tuple[list[_Op],
                                                     list[str], bool]:
        """(must-ops to apply, vars to degrade to unknown, callee may
        yield).  A must-op only survives when *every* candidate callee
        binds the variable and agrees on the exit state."""
        if self.info is None:
            return [], [], False
        pairs = self.lookup(call, self.info)
        if not pairs:
            return [], [], False
        chain = _attr_chain(call.func)
        receiver_var = chain[0] if len(chain) == 2 else None
        per_var_must: dict[str, set[str]] = {}
        per_var_seen: dict[str, int] = {}
        degrade: set[str] = set()
        may_yield = False
        for fid, summary in pairs:
            may_yield |= summary.may_yield
            bound = self.graph.bind_args(fid, call, receiver_var)
            for param, var in bound.items():
                if var in direct_vars:
                    continue
                must = summary.must_exit_state(param)
                if must is not None:
                    per_var_must.setdefault(var, set()).add(must)
                    per_var_seen[var] = per_var_seen.get(var, 0) + 1
                if summary.may_exit_states(param):
                    degrade.add(var)
                if param in summary.escapes:
                    self.escaped.add(var)
                    degrade.add(var)
        ops: list[_Op] = []
        for var, states in sorted(per_var_must.items()):
            if len(states) == 1 and per_var_seen[var] == len(pairs):
                proto, _, st = next(iter(states)).partition(":")
                spec = PROTOCOLS.get(proto)
                op = spec.op_for_state.get(st) if spec else None
                if op is not None:
                    ops.append(_Op(op, var, call.lineno))
                    degrade.discard(var)
                    continue
            degrade.add(var)
        return ops, sorted(degrade), may_yield

    # -- per-statement transfer ----------------------------------------------

    def _transfer(self, node: CFGNode,
                  state: _State) -> tuple[_State, _State]:
        calls = [c for expr in node.exprs for c in _walk_no_lambda(expr)
                 if isinstance(c, ast.Call)]

        # Dead-state uses are judged on the state *entering* the
        # statement — the op that kills a var happens during it.
        self._check_uses(node, state)

        after = dict(state)
        # A bare generator helper's yields are iteration, not
        # preemption; only thread bodies (ctx-taking functions)
        # preempt at yield — same rule as the race.py atomicity lint.
        stmt_yields = node.has_yield and bool(self._ctx_params)

        for call in calls:
            direct = classify_call(call, self._cls)
            for op in direct:
                after = self._apply_op(after, op)
            s_ops, s_degrade, callee_yields = self._summary_ops(
                call, {op.var for op in direct})
            for op in s_ops:
                after = self._apply_op(after, op)
            for var in s_degrade:
                fact = after.get(var)
                if fact is not None and fact.state != TOP:
                    after[var] = _Fact(fact.proto, TOP, fact.line)
            if callee_yields or _is_yield_primitive(call,
                                                    self._ctx_params):
                stmt_yields = True

        if stmt_yields:
            self.saw_yield = True
            self._check_yield_hazard(node, after)

        # Acquisitions bind on the normal out-state only — if the RHS
        # raised, nothing was acquired.
        exc_out = after
        norm_out = self._apply_stmt(node, after, calls)
        return norm_out, exc_out

    def _apply_stmt(self, node: CFGNode, state: _State,
                    calls: list[ast.Call]) -> _State:
        stmt = node.stmt
        out = state
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                acq = self._acquire_of(stmt.value)
                out = dict(state)
                if acq is not None:
                    proto, st = acq
                    out[target.id] = _Fact(proto, st, stmt.lineno,
                                           acquired=True)
                else:
                    out.pop(target.id, None)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                for n in _walk_no_lambda(stmt.value):
                    if isinstance(n, ast.Name) \
                            and isinstance(n.ctx, ast.Load):
                        self.escaped.add(n.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                out = dict(state)
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        out.pop(elt.id, None)
        elif isinstance(stmt, ast.AugAssign) \
                and isinstance(stmt.target, ast.Name):
            out = dict(state)
            out.pop(stmt.target.id, None)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            out = dict(state)
            for n in _walk_no_lambda(stmt.target):
                if isinstance(n, ast.Name):
                    out.pop(n.id, None)
        elif isinstance(stmt, ast.Delete):
            out = dict(state)
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    out.pop(tgt.id, None)
        # Constructor / container-method arguments escape.
        for call in calls:
            chain = _attr_chain(call.func)
            if not chain:
                continue
            if (len(chain) == 1 and chain[0][:1].isupper()) \
                    or chain[-1] in _ESCAPING_METHODS:
                for arg in list(call.args) + \
                        [kw.value for kw in call.keywords]:
                    if isinstance(arg, ast.Name):
                        self.escaped.add(arg.id)
        return out

    def _acquire_of(self, value: ast.AST) -> Optional[tuple[str, str]]:
        acq = classify_acquire(value, self._cls)
        if acq is not None:
            return acq
        if isinstance(value, ast.Call) and self.info is not None:
            pairs = self.lookup(value, self.info)
            if pairs:
                kinds = set(pairs[0][1].returns_acquired)
                for _fid, summary in pairs[1:]:
                    kinds &= set(summary.returns_acquired)
                if len(kinds) == 1:
                    proto, _, st = next(iter(kinds)).partition(":")
                    if proto in PROTOCOLS:
                        return (proto, st)
        return None

    # -- check-mode detectors ------------------------------------------------

    def _check_uses(self, node: CFGNode, state: _State) -> None:
        if not self._reporting:
            return
        dead = {var: fact for var, fact in state.items()
                if fact.state != TOP
                and fact.state in PROTOCOLS[fact.proto].dead_states}
        if not dead:
            return
        for expr in node.exprs:
            for sub in _walk_no_lambda(expr):
                if not isinstance(sub, ast.Attribute) \
                        or not isinstance(sub.value, ast.Name):
                    continue
                fact = dead.get(sub.value.id)
                if fact is None:
                    continue
                spec = PROTOCOLS[fact.proto]
                if not spec.use_rule:
                    continue
                if spec.use_writes_only \
                        and not isinstance(sub.ctx, ast.Store):
                    continue
                rule, template = spec.use_rule
                self._report(rule, template, sub.value.id,
                             node.lineno, fact.line)

    def _check_yield_hazard(self, node: CFGNode, state: _State) -> None:
        if not self._reporting:
            return
        for var, fact in sorted(state.items()):
            spec = PROTOCOLS[fact.proto]
            if not spec.yield_hazard or fact.state == TOP:
                continue
            hazard_state, rule, template = spec.yield_hazard
            if fact.state == hazard_state:
                self._report(rule, template, var, node.lineno,
                             fact.line)

    # -- drivers ---------------------------------------------------------------

    def run_check(self) -> list[Finding]:
        cfg = build_cfg(self.func)
        states = solve_forward(cfg, {}, self._transfer, _join)
        # Report only from fixpoint states: an intermediate state can
        # hold a concrete fact a later join degrades to unknown.
        self._reporting = True
        for node in cfg:
            if node.nid in states:
                self._transfer(node, states[node.nid])
        self._reporting = False
        return sorted(self.findings.values(),
                      key=lambda f: (f.lineno, f.rule))

    def run_summary(self, propagates: bool) -> Summary:
        cfg = build_cfg(self.func)
        states = solve_forward(cfg, {}, self._transfer, _join)
        params = set(self.info.params if self.info is not None else ())
        must: Optional[set[tuple[str, str]]] = None
        may: set[tuple[str, str]] = set()
        returns: Optional[set[str]] = None
        for node in cfg:
            if node.nid not in states:
                continue
            out_n, out_e = self._transfer(node, states[node.nid])
            if EXC_EXIT in node.exc or EXC_EXIT in node.succ:
                may |= self._param_states(out_e, params)
            if EXIT in node.succ:
                edge = self._param_states(out_n, params)
                may |= edge
                must = edge if must is None else (must & edge)
                ret = self._returned_kind(node, out_n)
                returns = ret if returns is None else (returns & ret)
        return Summary(
            must_exit=tuple(sorted(must or ())),
            may_exit=tuple(sorted(may)),
            escapes=tuple(sorted(v for v in self.escaped
                                 if v in params)),
            returns_acquired=tuple(sorted(returns or ())),
            may_yield=self.saw_yield,
            propagates_transient=propagates)

    @staticmethod
    def _param_states(state: _State,
                      params: set[str]) -> set[tuple[str, str]]:
        return {(var, f"{fact.proto}:{fact.state}")
                for var, fact in state.items()
                if var in params and fact.state != TOP}

    def _returned_kind(self, node: CFGNode, state: _State) -> set[str]:
        stmt = node.stmt
        if not isinstance(stmt, ast.Return) or stmt.value is None:
            return set()
        value = stmt.value
        if isinstance(value, ast.Name):
            fact = state.get(value.id)
            if fact is not None and fact.acquired and fact.state != TOP:
                return {f"{fact.proto}:{fact.state}"}
            return set()
        acq = self._acquire_of(value)
        if acq is not None:
            return {f"{acq[0]}:{acq[1]}"}
        return set()


# -- transient propagation (errorpaths' interprocedural half) ---------------

def _function_propagates(info: FunctionInfo, lines: Optional[list[str]],
                         callee_propagates: Callable[[ast.Call], bool]
                         ) -> bool:
    """Does a transient pager/disk error escape *info* to its caller?

    True for a ``#: no-retry``-annotated transient op (the annotation
    *means* "my caller retries"), and for an unprotected call to a
    callee that itself propagates.
    """
    from repro.analysis.cfg import _header_exprs
    from repro.analysis.errorpaths import (
        TRANSIENT_OPS, _annotated, _call_tail, _catches_transient)

    def scan(expr: ast.AST, protected: int) -> bool:
        if protected:
            return False
        for sub in _walk_no_lambda(expr):
            if not isinstance(sub, ast.Call):
                continue
            tail = _call_tail(sub)
            if tail == "_call_pager":
                continue            # the retry funnel itself
            annotated = lines is not None \
                and _annotated(lines, sub.lineno)
            if tail in TRANSIENT_OPS:
                if annotated:
                    return True
            elif not annotated and callee_propagates(sub):
                return True
        return False

    def walk(stmts: Iterable[ast.stmt], protected: int) -> bool:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Try):
                protects = any(_catches_transient(h)
                               for h in stmt.handlers)
                if walk(stmt.body + stmt.orelse,
                        protected + (1 if protects else 0)):
                    return True
                for handler in stmt.handlers:
                    if walk(handler.body, protected):
                        return True
                if walk(stmt.finalbody, protected):
                    return True
                continue
            # Only the statement's *header* expressions are evaluated
            # at this protection depth; nested suites recurse below.
            for expr in _header_exprs(stmt):
                if scan(expr, protected):
                    return True
            for name in ("body", "orelse"):
                inner = getattr(stmt, name, None)
                if isinstance(inner, list) and inner \
                        and isinstance(inner[0], ast.stmt):
                    if walk(inner, protected):
                        return True
        return False

    return walk(list(info.func.body), 0)


# -- context: call graph + summaries over a module set -----------------------

@dataclass
class AnalysisContext:
    """Everything the interprocedural passes share for one run."""

    graph: CallGraph
    summaries: dict[str, Summary]

    def lookup(self, call: ast.Call,
               caller: FunctionInfo) -> list[tuple[str, Summary]]:
        return [(f, self.summaries.get(f, EMPTY_SUMMARY))
                for f in self.graph.resolve(call, caller)]

    def caller_info(self, module: str,
                    qualname: str) -> Optional[FunctionInfo]:
        return self.graph.functions.get(f"{module}:{qualname}")

    def summary_digest(self, module: str) -> str:
        """Stable digest of every summary in *module* — the
        "dependency summary" component of incremental cache keys."""
        import hashlib
        parts = [f"{fid}={self.summaries[fid]!r}"
                 for fid in sorted(self.summaries)
                 if fid.startswith(module + ":")]
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    def dependencies(self, module: str) -> frozenset[str]:
        """Modules whose summaries this module's findings consult:
        every module containing a resolved callee of its functions."""
        deps: set[str] = set()
        prefix = module + ":"
        for fid, callees in self.graph.edges.items():
            if not fid.startswith(prefix):
                continue
            for callee in callees:
                dep = self.graph.functions[callee].module
                if dep != module:
                    deps.add(dep)
        return frozenset(deps)


def build_context(modules: Iterable[tuple[str, ast.AST,
                                          Optional[list[str]]]]
                  ) -> AnalysisContext:
    """Build the call graph and compute all function summaries
    bottom-up.  *modules* yields ``(dotted name, tree, source lines)``
    (lines may be None; the no-retry annotation check then degrades)."""
    modules = list(modules)
    graph = build_callgraph((m, t) for m, t, _ in modules)
    lines_of = {m: ln for m, _t, ln in modules}

    def local(info: FunctionInfo, lookup: SummaryLookup) -> Summary:
        def callee_propagates(call: ast.Call) -> bool:
            return any(summary.propagates_transient
                       for _fid, summary in lookup(call, info))

        propagates = _function_propagates(
            info, lines_of.get(info.module), callee_propagates)
        engine = _FunctionEngine(info.module, info.qualname, info.func,
                                 info, graph, lookup)
        return engine.run_summary(propagates)

    summaries = compute_summaries(graph, local)
    return AnalysisContext(graph=graph, summaries=summaries)


# -- the pass ----------------------------------------------------------------

def check_module(module: str, tree: ast.AST,
                 ctx: Optional[AnalysisContext] = None) -> list[Finding]:
    """Typestate-check one module.  Without *ctx*, a module-local
    context is built, so helper/caller pairs inside the module are
    still checked interprocedurally (what the fixtures exercise)."""
    if ctx is None:
        ctx = build_context([(module, tree, None)])
    findings: list[Finding] = []
    for qualname, func in iter_functions(tree):
        info = ctx.caller_info(module, qualname)
        engine = _FunctionEngine(module, qualname, func, info,
                                 ctx.graph, ctx.lookup)
        findings += engine.run_check()
    return findings


def in_scope(module: str, package: str = "repro") -> bool:
    """Typestate scope: the simulated kernel, not the tooling."""
    inner = _strip(module, package)
    if inner is None or inner == "":
        return False
    return inner.split(".")[0] not in EXEMPT


def run_pass(root: Optional[Path] = None,
             package: str = "repro") -> list[Finding]:
    """Typestate-check every in-scope module with whole-tree context."""
    modules = list(iter_source_modules(root, package))
    ctx = build_context(
        (m, t, p.read_text().splitlines()) for m, p, t in modules)
    findings: list[Finding] = []
    for module, _path, tree in modules:
        if not in_scope(module, package):
            continue
        findings += check_module(module, tree, ctx)
    return findings
