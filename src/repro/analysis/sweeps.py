"""Invariant sweeps: run the sanitizer across architectures and workloads.

``python -m repro check`` drives this module: for each of the five pmap
architectures (generic, vax, rt_pc, sun3, ns32082) it boots kernels,
arms the sanitizer hooks (:func:`~repro.analysis.invariants
.install_sanitizer`) and runs three stress workloads that exercise the
machinery the paper's contract protects:

* **fork+COW** — the Table 7-1 zero-fill and fork-256K workloads via
  :mod:`repro.bench.workloads`, driving demand-zero faults, symmetric
  copy-on-write and shadow-chain growth;
* **pageout-pressure** — a memory-starved kernel overcommitted 2x, so
  the paging daemon steals, launders and shootdowns while tasks keep
  refaulting;
* **shootdown** — a 4-CPU kernel under each of the three Section 5.2
  strategies, with cross-CPU touches, protection changes and
  deallocations from another CPU, closed out by ``pmap_update``.

Each workload ends with one final full :func:`check_all`; any violation
at any point raises, and :func:`run_sweeps` reports per-cell results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.invariants import (
    SanitizerError,
    assert_all,
    install_sanitizer,
    uninstall_sanitizer,
)
from repro.bench.testing import make_spec
from repro.bench.workloads import MachSUT, measure_fork, measure_zero_fill
from repro.core.constants import FaultType, VMProt
from repro.core.kernel import MachKernel
from repro.pmap.interface import ShootdownStrategy

KB = 1024
MB = 1024 * 1024

#: Machine parameters per architecture (mirrors the test fixtures).
SWEEP_ARCHS: dict[str, dict] = {
    "generic": {},
    "vax": dict(hw_page_size=512, page_size=4096),
    "rt_pc": dict(hw_page_size=2048, page_size=4096),
    "sun3": dict(hw_page_size=8192, page_size=8192, mmu_contexts=8),
    "ns32082": dict(hw_page_size=512, page_size=4096,
                    va_limit=16 * MB, buggy_rmw_reports_read=True),
}


@dataclass
class SweepResult:
    """Outcome of one (architecture, workload) cell."""

    arch: str
    workload: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        tail = f": {self.detail}" if self.detail else ""
        return f"{self.arch:<10} {self.workload:<20} {status}{tail}"


def _spec(arch: str, **overrides):
    kwargs = dict(SWEEP_ARCHS[arch])
    kwargs.update(overrides)
    return make_spec(name=f"sweep-{arch}", pmap_name=arch, **kwargs)


def _sweep_fork_cow(arch: str) -> None:
    """Table 7-1 workloads with the sanitizer armed throughout."""
    sut = MachSUT(_spec(arch))
    install_sanitizer(sut.kernel)
    try:
        measure_zero_fill(sut)
        measure_fork(sut, dirty_bytes=64 * KB)
        # A second fork generation deepens the shadow chains.
        proc = sut.create_process()
        addr = sut.dirty_data(proc, 32 * KB)
        child = sut.fork_op(proc)
        child.task.write(addr, b"child writes through COW")
        grandchild = sut.fork_op(child)
        grandchild.task.write(addr, b"grandchild too")
        sut.reap(grandchild)
        sut.reap(child)
        assert_all(sut.kernel)
    finally:
        uninstall_sanitizer(sut.kernel)


def _sweep_pageout(arch: str) -> None:
    """Overcommit a small machine so the paging daemon must steal."""
    kernel = MachKernel(_spec(arch, memory_frames=32))
    install_sanitizer(kernel)
    try:
        page = kernel.page_size
        task = kernel.task_create(name="hog")
        addr = task.vm_allocate(64 * page)
        for off in range(0, 64 * page, page):
            task.write(addr + off, bytes([off // page % 255 + 1]))
        child = task.fork()
        child.write(addr, b"fork under pressure")
        kernel.pageout_daemon.run()
        # Refault a few evicted pages (pagein from the default pager).
        for off in range(0, 16 * page, page):
            assert task.read(addr + off, 1)[0] == off // page % 255 + 1
        child.terminate()
        kernel.pageout_daemon.run()
        assert_all(kernel)
    finally:
        uninstall_sanitizer(kernel)


def _sweep_shootdown(arch: str) -> None:
    """Cross-CPU mapping changes under all three Section 5.2
    strategies."""
    for strategy in ShootdownStrategy:
        kernel = MachKernel(_spec(arch, ncpus=4), shootdown=strategy)
        install_sanitizer(kernel)
        try:
            page = kernel.page_size
            task = kernel.task_create(name=f"smp-{strategy.value}")
            addr = task.vm_allocate(8 * page)
            # Touch from several CPUs so each TLB caches translations.
            for cpu_id in range(3):
                kernel.set_current_cpu(cpu_id)
                for off in range(0, 8 * page, page):
                    task.write(addr + off, b"x")
            # Mutate the mappings from CPU 0: lower protection, then
            # deallocate half the range.
            kernel.set_current_cpu(0)
            task.vm_protect(addr, 4 * page, False, VMProt.READ)
            task.vm_deallocate(addr + 4 * page, 4 * page)
            # Read through the demoted range from another CPU.
            kernel.set_current_cpu(1)
            for off in range(0, 4 * page, page):
                task.read(addr + off, 1)
            # Close every shootdown window, then audit everything.
            kernel.pmap_system.update()
            if strategy is ShootdownStrategy.LAZY:
                # LAZY bounds staleness at activate-time; emulate the
                # bound by flushing, as pageout must (Section 5.2).
                for cpu in kernel.machine.cpus:
                    cpu.tlb.flush_all()
            kernel.set_current_cpu(0)
            assert_all(kernel)
        finally:
            uninstall_sanitizer(kernel)


WORKLOADS = (
    ("fork+COW", _sweep_fork_cow),
    ("pageout-pressure", _sweep_pageout),
    ("shootdown", _sweep_shootdown),
)


def _run_cell(cell: tuple[str, str]) -> SweepResult:
    """Run one (architecture, workload) cell — module-level so a
    process pool can pickle it.  A sanitizer violation fails the cell
    with its first finding; any other exception also fails the cell
    (naming the crash) rather than escaping — a crash inside a pool
    worker must never strand the parent's ``imap`` iteration or let
    the sweep report clean."""
    arch, name = cell
    workload = dict(WORKLOADS)[name]
    try:
        workload(arch)
    except SanitizerError as exc:
        first = str(exc.violations[0]) if exc.violations else str(exc)
        return SweepResult(arch, name, False, first)
    except Exception as exc:
        return SweepResult(arch, name, False,
                           f"cell crashed: {type(exc).__name__}: {exc}")
    return SweepResult(arch, name, True)


def run_sweeps(archs=None, verbose: bool = False,
               jobs: int | None = None) -> list[SweepResult]:
    """Run every (architecture, workload) cell; returns the results.

    Every cell boots its own kernels and is fully independent, so with
    ``jobs > 1`` the matrix fans out over a process pool (fork), one
    cell per task; results come back in matrix order either way.
    """
    cells = [(arch, name) for arch in (archs or SWEEP_ARCHS)
             for name, _ in WORKLOADS]
    results: list[SweepResult] = []
    if jobs is not None and jobs > 1 and len(cells) > 1:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(jobs, len(cells))) as pool:
            for result in pool.imap(_run_cell, cells):
                results.append(result)
                if verbose:
                    print(str(result))
    else:
        for cell in cells:
            results.append(_run_cell(cell))
            if verbose:
                print(str(results[-1]))
    return results
