"""Runtime sanitizer: is the machine-dependent layer telling the truth?

The MD/MI contract (Section 3.6, quoted in ``pmap/interface.py``) lets
the pmap layer *forget* mappings at almost any time, but never *invent*
or *retain* one the machine-independent structures do not sanction, and
never with a more permissive protection.  :func:`check_all` audits a
quiescent kernel against that contract:

* every translation in every pmap's machine-dependent structures maps a
  virtual address the owning task's address map covers, to the frame
  the resident shadow-chain walk produces, with protection no more
  permissive than the effective map-entry protection — and never
  writable while the entry is ``needs_copy`` or the page still lives in
  a backing object of the chain;
* every per-CPU TLB entry is a subset of the MD structures (strategy
  aware: under LAZY, and inside an open DEFERRED window, staleness is
  sanctioned by Section 5.2 and skipped — once the window closes, a
  surviving stale entry is a shootdown bug);
* the pv (physical-to-virtual) table and the MD structures describe the
  same set of live mappings, over allocated frames only;
* shadow-chain reference counts equal the number of actual referents
  (map entries, shadow pointers, the object cache, in-flight
  out-of-line message holders);
* the resident page table's queues/hash/object lists agree, every map's
  structural invariants hold, and no physical frame is allocated
  outside the resident table (frame leak) or vice versa.

All checks are side-effect free: they never take the clock-charging
``lookup`` paths, never mutate lookup hints or counters, and never
touch pager state — so an enabled sanitizer perturbs no simulated cost
measurement, only host time.

:func:`install_sanitizer` arms the kernel's debug hooks so sweeps run
after every fault, task lifecycle event, pageout pass, and shootdown;
the hooks are ``None`` by default and cost nothing disabled.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.core.constants import VMProt
from repro.pmap.interface import ShootdownStrategy


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


class SanitizerError(AssertionError):
    """Raised by :func:`assert_all` when any invariant is broken."""

    def __init__(self, violations: list[Violation]) -> None:
        self.violations = violations
        lines = "\n  ".join(str(v) for v in violations)
        super().__init__(
            f"{len(violations)} VM invariant violation(s):\n  {lines}")


# ---------------------------------------------------------------------------
# Side-effect-free resolution helpers
# ---------------------------------------------------------------------------

def _resolve(vm_map, address: int):
    """Resolve *address* in *vm_map* without touching hints, counters
    or the clock; descends one sharing-map level like fault-time lookup.

    Returns ``(effective_protection, needs_copy, vm_object, offset)``
    or None when nothing is mapped there.  ``vm_object`` may be None
    (lazily materialized zero-fill with no object yet).
    """
    for entry in vm_map.entries():
        if entry.start > address:
            break
        if not entry.contains(address):
            continue
        if entry.is_sub_map:
            sub_addr = entry.offset_of(address)
            for leaf in entry.submap.entries():
                if leaf.start > sub_addr:
                    break
                if leaf.contains(sub_addr):
                    return (entry.protection & leaf.protection,
                            entry.needs_copy or leaf.needs_copy,
                            leaf.vm_object, leaf.offset_of(sub_addr))
            return None
        return (entry.protection, entry.needs_copy,
                entry.vm_object, entry.offset_of(address))
    return None


def _chain_page(obj, offset: int):
    """Walk the shadow chain from (*obj*, *offset*); returns
    ``(page, level)`` for the first resident page found (level 0 = the
    object itself) or ``(None, -1)``.  Uses only the side-effect-free
    per-object page dict, never the counting resident-table hash."""
    level = 0
    while obj is not None:
        page = obj.resident_page(offset)
        if page is not None:
            return page, level
        offset += obj.shadow_offset
        obj = obj.shadow
        level += 1
    return None, -1


def _live_pmaps(kernel) -> dict[int, object]:
    """id(pmap) -> pmap for the kernel pmap and every live task."""
    live = {id(kernel.kernel_pmap): kernel.kernel_pmap}
    for task in kernel.tasks:
        live[id(task.pmap)] = task.pmap
    return live


# ---------------------------------------------------------------------------
# Individual audits
# ---------------------------------------------------------------------------

def _check_structures(kernel, out: list[Violation]) -> None:
    """Resident-table cross-links and per-map structural invariants."""
    try:
        kernel.vm.resident.check_consistency()
    except AssertionError as exc:
        out.append(Violation("resident-table", str(exc)))
    seen_submaps: dict[int, object] = {}
    maps = [(f"task {task.name}", task.vm_map) for task in kernel.tasks]
    maps += [(f"ool holder@{hid:#x}", holder)
             for hid, holder in getattr(kernel, "_ool_in_flight",
                                        {}).items()]
    for label, vm_map in list(maps):
        for entry in vm_map.entries():
            if entry.is_sub_map and id(entry.submap) not in seen_submaps:
                seen_submaps[id(entry.submap)] = entry.submap
                maps.append((f"sharing map@{id(entry.submap):#x}",
                             entry.submap))
    for label, vm_map in maps:
        try:
            vm_map.check_invariants()
        except AssertionError as exc:
            out.append(Violation("map-structure", f"{label}: {exc}"))


def _check_frames(kernel, out: list[Violation]) -> None:
    """The frame store and the resident table must agree on which
    frames are allocated (frames leave ``physmem`` only through
    ``resident.allocate``)."""
    allocated = set(kernel.machine.physmem._allocated)
    tabled = set(kernel.vm.resident._pages)
    for phys in sorted(allocated - tabled):
        out.append(Violation(
            "frame-leak",
            f"frame {phys:#x} allocated but unknown to the resident "
            f"page table"))
    for phys in sorted(tabled - allocated):
        out.append(Violation(
            "frame-ghost",
            f"resident page entry for {phys:#x} but the frame is free"))


def _check_refcounts(kernel, out: list[Violation]) -> None:
    """Every reachable object's ref_count equals its referent count.

    Referents: map entries (task maps, sharing maps, in-flight OOL
    holding maps), shadow pointers, and the object cache.
    """
    object_refs: Counter = Counter()
    submap_refs: Counter = Counter()
    submaps: dict[int, object] = {}
    roots = [task.vm_map for task in kernel.tasks]
    roots += list(getattr(kernel, "_ool_in_flight", {}).values())

    def scan_map(vm_map) -> None:
        for entry in vm_map.entries():
            if entry.is_sub_map:
                submap_refs[id(entry.submap)] += 1
                if id(entry.submap) not in submaps:
                    submaps[id(entry.submap)] = entry.submap
            elif entry.vm_object is not None:
                object_refs[id(entry.vm_object)] += 1

    for vm_map in roots:
        scan_map(vm_map)
    for submap in list(submaps.values()):
        scan_map(submap)

    stack = []
    for vm_map in roots + list(submaps.values()):
        for entry in vm_map.entries():
            if entry.vm_object is not None:
                stack.append(entry.vm_object)
    stack.extend(kernel.vm.objects._cache.values())
    seen: dict[int, object] = {}
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen[id(obj)] = obj
        if obj.shadow is not None:
            object_refs[id(obj.shadow)] += 1
            stack.append(obj.shadow)

    for obj_id, obj in seen.items():
        if obj.terminated:
            out.append(Violation(
                "object-terminated",
                f"terminated {obj!r} still reachable"))
        expected = object_refs[obj_id]
        if obj.ref_count != expected:
            out.append(Violation(
                "object-refcount",
                f"{obj!r}: ref_count={obj.ref_count} but {expected} "
                f"referents found"))
    for submap_id, submap in submaps.items():
        if submap.ref_count != submap_refs[submap_id]:
            out.append(Violation(
                "sharing-map-refcount",
                f"{submap!r}: ref_count={submap.ref_count} but "
                f"{submap_refs[submap_id]} entries point at it"))


def _check_md_subset(kernel, out: list[Violation]
                     ) -> dict[tuple[int, int], int]:
    """Every MD translation is a subset of MI truth.

    Returns the Mach-level mappings discovered, as
    ``{(id(pmap), mach_va): mach_frame}`` for the pv cross-check.
    """
    page_size = kernel.page_size
    va_limit = kernel.spec.va_limit
    discovered: dict[tuple[int, int], int] = {}
    for task in kernel.tasks:
        pmap = task.pmap
        for hw_va in list(pmap._hw_iter(0, va_limit)):
            hit = pmap._hw_lookup(hw_va)
            if hit is None:
                continue
            hw_frame, hw_prot = hit
            mach_va = hw_va - hw_va % page_size
            discovered.setdefault((id(pmap), mach_va),
                                  hw_frame - (hw_va - mach_va))
            resolved = _resolve(task.vm_map, mach_va)
            if resolved is None:
                out.append(Violation(
                    "md-unsanctioned-mapping",
                    f"{pmap!r} maps va {hw_va:#x} but task "
                    f"{task.name}'s address map has no entry there "
                    f"(pmap invented or retained a mapping)"))
                continue
            eff_prot, needs_copy, obj, offset = resolved
            if hw_prot & ~eff_prot:
                out.append(Violation(
                    "md-protection-too-permissive",
                    f"{pmap!r} va {hw_va:#x}: hardware allows "
                    f"{hw_prot!r} but the map entry allows only "
                    f"{eff_prot!r}"))
            if obj is None:
                out.append(Violation(
                    "md-maps-lazy-region",
                    f"{pmap!r} va {hw_va:#x} maps a region that has "
                    f"no memory object yet (nothing to map)"))
                continue
            page, level = _chain_page(obj, offset)
            if page is None:
                out.append(Violation(
                    "md-maps-nonresident",
                    f"{pmap!r} va {hw_va:#x}: no resident page in "
                    f"{obj!r}'s shadow chain at offset {offset:#x}"))
                continue
            if page.busy or page.absent:
                continue   # in transit: the fault path owns it
            expected = page.phys_addr + (hw_va - mach_va)
            if hw_frame != expected:
                out.append(Violation(
                    "md-wrong-frame",
                    f"{pmap!r} va {hw_va:#x} -> frame {hw_frame:#x} "
                    f"but MI truth says {expected:#x}"))
            if (hw_prot & VMProt.WRITE) and (needs_copy or level > 0):
                why = ("the entry is needs_copy" if needs_copy
                       else f"the page lives {level} level(s) down "
                            f"the shadow chain")
                out.append(Violation(
                    "md-writable-cow",
                    f"{pmap!r} va {hw_va:#x} is writable but {why} — "
                    f"a write would corrupt shared data"))
    return discovered


def _check_pv(kernel, md_mappings: dict[tuple[int, int], int],
              out: list[Violation]) -> None:
    """The pv table and the MD structures agree, both directions."""
    system = kernel.pmap_system
    resident_frames = kernel.vm.resident._pages
    pv_seen: set[tuple[int, int]] = set()
    for frame, mappings in system._pv.items():
        if frame not in resident_frames:
            out.append(Violation(
                "pv-free-frame",
                f"pv table records mappings of frame {frame:#x}, "
                f"which is not resident"))
        for pmap, vaddr in mappings:
            pv_seen.add((id(pmap), vaddr))
            hit = pmap._hw_lookup(vaddr)
            if hit is None:
                out.append(Violation(
                    "pv-dangling",
                    f"pv table says {pmap!r} maps {vaddr:#x} -> "
                    f"{frame:#x} but the pmap holds no translation"))
            elif hit[0] != frame:
                out.append(Violation(
                    "pv-wrong-frame",
                    f"pv table says {pmap!r} maps {vaddr:#x} -> "
                    f"{frame:#x} but the pmap maps it to "
                    f"{hit[0]:#x}"))
    for (pmap_id, mach_va), frame in md_mappings.items():
        if (pmap_id, mach_va) not in pv_seen:
            out.append(Violation(
                "pv-missing",
                f"pmap id {pmap_id:#x} maps {mach_va:#x} -> "
                f"{frame:#x} but the pv table has no record "
                f"(pmap_remove_all would miss it)"))


def check_tlbs(kernel) -> list[Violation]:
    """Audit every per-CPU TLB against the MD structures.

    Strategy-aware, per Section 5.2: under LAZY, stale entries are
    sanctioned (bounded by flush-at-activate); under DEFERRED a CPU
    with queued flushes is inside an open window and is skipped — once
    the window closes (or under IMMEDIATE), any entry that disagrees
    with its pmap's structures is a shootdown bug.  The taint check
    (a CPU holding entries for a pmap must appear in that pmap's
    ``cpus_tainted``) applies under every strategy, since shootdown
    consults only tainted CPUs.

    Safe to call at any time — it never consults the (possibly
    mid-mutation) machine-independent maps, only TLB vs. pmap.
    """
    out: list[Violation] = []
    system = kernel.pmap_system
    lazy = system.strategy is ShootdownStrategy.LAZY
    live = _live_pmaps(kernel)
    hw_page = kernel.machine.hw_page_size
    for cpu in kernel.machine.cpus:
        window_open = cpu.has_deferred_flushes
        for tag, vpn, entry_paddr, entry_prot in cpu.tlb.snapshot():
            vaddr = vpn * hw_page
            pmap = live.get(tag)
            if pmap is not None and cpu.cpu_id not in pmap.cpus_tainted:
                out.append(Violation(
                    "tlb-untracked-cpu",
                    f"cpu{cpu.cpu_id} caches {pmap!r} va {vaddr:#x} "
                    f"but is not in its cpus_tainted set — shootdown "
                    f"would never reach this entry"))
            if lazy or window_open:
                continue
            if pmap is None:
                out.append(Violation(
                    "tlb-orphaned",
                    f"cpu{cpu.cpu_id} holds an entry (va {vaddr:#x}, "
                    f"{entry_prot!r}) for a pmap that no longer "
                    f"exists"))
                continue
            hit = pmap._hw_lookup(vaddr)
            if hit is None:
                out.append(Violation(
                    "tlb-stale",
                    f"cpu{cpu.cpu_id} TLB still maps {pmap!r} va "
                    f"{vaddr:#x} ({entry_prot!r}) after the pmap "
                    f"dropped it and the shootdown window closed"))
                continue
            md_frame, md_prot = hit
            if entry_paddr != md_frame:
                out.append(Violation(
                    "tlb-wrong-frame",
                    f"cpu{cpu.cpu_id} TLB maps {pmap!r} va "
                    f"{vaddr:#x} -> {entry_paddr:#x} but the pmap "
                    f"says {md_frame:#x}"))
            if entry_prot & ~md_prot:
                out.append(Violation(
                    "tlb-too-permissive",
                    f"cpu{cpu.cpu_id} TLB allows {entry_prot!r} at "
                    f"{pmap!r} va {vaddr:#x} but the pmap allows "
                    f"only {md_prot!r}"))
    return out


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def check_all(kernel) -> list[Violation]:
    """Run every audit against a quiescent *kernel*; returns all
    violations found (empty = the MD layer is telling the truth)."""
    out: list[Violation] = []
    _check_structures(kernel, out)
    _check_frames(kernel, out)
    _check_refcounts(kernel, out)
    md_mappings = _check_md_subset(kernel, out)
    _check_pv(kernel, md_mappings, out)
    out.extend(check_tlbs(kernel))
    return out


def assert_all(kernel) -> None:
    """:func:`check_all`, raising :class:`SanitizerError` on failure."""
    violations = check_all(kernel)
    if violations:
        raise SanitizerError(violations)


def install_sanitizer(kernel) -> None:
    """Arm the kernel's debug hooks: full sweeps after faults, task
    lifecycle events and pageout passes; TLB-only sweeps after every
    shootdown and ``pmap_update`` (safe mid-operation — see
    :func:`check_tlbs`)."""
    kernel.sanitize_hook = assert_all

    def tlb_hook() -> None:
        violations = check_tlbs(kernel)
        if violations:
            raise SanitizerError(violations)

    kernel.pmap_system.debug_hook = tlb_hook


def uninstall_sanitizer(kernel) -> None:
    """Disarm the hooks installed by :func:`install_sanitizer`."""
    kernel.sanitize_hook = None
    kernel.pmap_system.debug_hook = None
