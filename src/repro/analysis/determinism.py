"""Determinism lint: kernel code must not consult the real world.

Every sweep, race schedule, and fault-injection run replays from a
seed (one ``random.Random(seed)`` in the injector, virtual time on
the machine clock).  A single wall-clock read or unseeded random draw
in kernel code silently breaks replay — results stop being a function
of the seed.  This pass forbids, in simulation code:

* ``wall-clock`` — ``time.time``/``monotonic``/``perf_counter``/
  ``sleep`` and friends (simulated time lives on ``machine.clock``),
  ``datetime.now``/``utcnow``/``today``;
* ``unseeded-random`` — any ``random``-module call except
  constructing a seeded ``random.Random(seed)`` generator;
* ``nondeterministic-source`` — ``os.urandom``, ``uuid.uuid1``/
  ``uuid4``, and any ``secrets`` import.

Scope: all of ``repro`` except the layers that *report on* runs
rather than participate in them — ``bench`` (measures real wall
clock on purpose), ``cli``, ``analysis``, and ``viz``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional

from repro.analysis.flow import Finding, iter_source_modules
from repro.analysis.layering import _strip

PASS_NAME = "determinism"

#: Part of the incremental-cache key: bump on any behavior change.
PASS_VERSION = "1"

#: Top-level repro subpackages outside the replayed simulation.
EXEMPT = ("bench", "cli", "analysis", "viz", "__main__")

WALL_CLOCK_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time",
    "process_time_ns", "sleep",
})
DATETIME_FNS = frozenset({"now", "utcnow", "today"})
RANDOM_OK = frozenset({"Random", "SystemRandom"})  # SystemRandom caught
UUID_BAD = frozenset({"uuid1", "uuid4"})


def _chain(expr: ast.AST) -> list[str]:
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
    return list(reversed(parts))


class _ModuleChecker(ast.NodeVisitor):
    def __init__(self, module: str) -> None:
        self.module = module
        self.findings: list[Finding] = []
        self._scope: list[str] = []

    def _report(self, lineno: int, rule: str, message: str) -> None:
        self.findings.append(Finding(
            PASS_NAME, self.module, lineno, rule,
            ".".join(self._scope), message))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "secrets" or \
                    alias.name.startswith("secrets."):
                self._report(
                    node.lineno, "nondeterministic-source",
                    "importing 'secrets' in simulation code; replay "
                    "seeds cannot reproduce OS entropy")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for alias in node.names:
            if mod == "time" and alias.name in WALL_CLOCK_FNS:
                self._report(
                    node.lineno, "wall-clock",
                    f"'from time import {alias.name}' in simulation "
                    f"code; use the machine clock "
                    f"(machine.clock.charge/wait) so time replays")
            elif mod == "random" and alias.name not in RANDOM_OK:
                self._report(
                    node.lineno, "unseeded-random",
                    f"'from random import {alias.name}' draws from the "
                    f"shared unseeded generator; construct a "
                    f"random.Random(seed) instead")
            elif mod == "random" and alias.name == "SystemRandom":
                self._report(
                    node.lineno, "nondeterministic-source",
                    "SystemRandom reads OS entropy; replay is "
                    "impossible — use random.Random(seed)")
            elif mod == "secrets":
                self._report(
                    node.lineno, "nondeterministic-source",
                    "importing from 'secrets' in simulation code; "
                    "replay seeds cannot reproduce OS entropy")

    def visit_Call(self, node: ast.Call) -> None:
        chain = _chain(node.func)
        if len(chain) >= 2:
            root, tail = chain[0], chain[-1]
            if root == "time" and tail in WALL_CLOCK_FNS:
                self._report(
                    node.lineno, "wall-clock",
                    f"time.{tail}() reads the host's clock; simulated "
                    f"time lives on machine.clock — wall time breaks "
                    f"replay and makes runs machine-dependent")
            elif root in ("datetime", "date") and tail in DATETIME_FNS:
                self._report(
                    node.lineno, "wall-clock",
                    f"{'.'.join(chain)}() reads the host's clock; "
                    f"wall time breaks replay")
            elif root == "random":
                if tail == "SystemRandom":
                    self._report(
                        node.lineno, "nondeterministic-source",
                        "random.SystemRandom() reads OS entropy; use "
                        "random.Random(seed)")
                elif tail not in RANDOM_OK:
                    self._report(
                        node.lineno, "unseeded-random",
                        f"random.{tail}() draws from the shared "
                        f"unseeded generator; every replay diverges — "
                        f"use a random.Random(seed) instance")
            elif root == "os" and tail == "urandom":
                self._report(
                    node.lineno, "nondeterministic-source",
                    "os.urandom() is OS entropy; replay seeds cannot "
                    "reproduce it")
            elif root == "uuid" and tail in UUID_BAD:
                self._report(
                    node.lineno, "nondeterministic-source",
                    f"uuid.{tail}() is time/entropy-derived and breaks "
                    f"replay; derive ids from a counter or the seed")
        self.generic_visit(node)


def check_module(module: str, tree: ast.AST) -> list[Finding]:
    """Run the determinism rules over one parsed module."""
    checker = _ModuleChecker(module)
    checker.visit(tree)
    return checker.findings


def in_scope(module: str, package: str = "repro") -> bool:
    """Determinism applies to the replayed simulation modules."""
    inner = _strip(module, package)
    if inner is None or inner == "":
        return False
    return inner.split(".")[0] not in EXEMPT


def run_pass(root: Optional[Path] = None,
             package: str = "repro") -> list[Finding]:
    """Determinism-lint every simulation module in the tree."""
    findings: list[Finding] = []
    for module, _path, tree in iter_source_modules(root, package):
        if not in_scope(module, package):
            continue
        findings += check_module(module, tree)
    return findings
