"""Concurrency sanitizer: yield-safety lint, guarded-by contract, and a
happens-before race detector for TLB shootdown.

Sections 4.2 and 6 of the paper reason about exactly one hazard: a
mapping change on one CPU racing with translations cached in other
CPUs' TLBs, with each shootdown strategy (IMMEDIATE / DEFERRED / LAZY)
trading consistency for cost.  This module makes that hazard — and the
software analogue, MI code caching mutable VM state across a preemption
point — mechanically checkable, extending the PR-1 sanitizer from
layering and end-state invariants to *time*.

Static half (stdlib ``ast``, same style as :mod:`.layering`):

* **may-yield atomicity** — compute which functions can transitively
  reach a preemption point (a ``yield`` in a thread body,
  ``ThreadContext.read``/``write``/``rmw``, or fault entry) and flag
  code that reads shared kernel state, crosses a may-yield call, then
  writes based on the stale read (rules ``atomicity-hazard`` and
  ``stale-read-across-yield``).  The kernel funnel modules
  (``core.kernel``, ``core.fault``, ``core.pageout``) are exempt: they
  run under the map/object locks whose contract the guarded-by half
  checks.
* **guarded-by contract** — shared mutable attributes on ``MachKernel``,
  ``AddressMap``, ``VMObject`` and ``ResidentPageTable`` are declared
  with ``#: guarded-by <discipline>`` comments; every mutation outside
  the owning module is checked against the declared discipline's
  allow-list (rule ``guarded-by``), external mutation of an undeclared
  attribute is flagged (``undeclared-shared-mutable``), and a
  malformed or unattached annotation is itself a violation
  (``malformed-guard``).

Dynamic half: :class:`RaceDetector`, a happens-before checker that
timestamps every pmap/TLB mutation and every TLB-backed access with
per-CPU vector clocks.  A shootdown opens an *invalidation window* per
CPU; a TLB hit on a translation filled before the invalidation is a
race **unless** the window is still legally open — DEFERRED until that
CPU's next timer tick, LAZY (unforced) until the next activate-time
flush.  IMMEDIATE never sanctions staleness, so an unmodified kernel
must produce zero reports under it.  Each report carries a replayable
event trace with provenance.

Everything attaches through the kernel's instrumentation bus
(:class:`repro.obs.bus.EventBus`): the detector subscribes one
dispatcher to ``kernel.events`` and consumes the ``tlb/*``,
``cpu/tick``, ``pmap/shootdown`` and ``sched/slice`` events the checked
layers publish — those layers never import this package.  (The old
duck-typed hooks — ``TLB.trace_hook``, ``CPU.tick_hook``,
``PmapSystem.race_hook``, ``Scheduler.race_hook`` — are gone; the bus
is the only attachment point.)

Run the storm via ``python -m repro races`` (arch x strategy matrix,
replay seed per cell) or ``--explore`` for bounded DFS over schedules.
"""

from __future__ import annotations

import ast
import re
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from repro.analysis.layering import LintViolation, _module_name, _within
from repro.analysis.schedules import (
    ExplorationResult,
    RecordingPolicy,
    SeededRandomPolicy,
    explore_schedules,
)
from repro.analysis.invariants import assert_all
from repro.analysis.sweeps import SWEEP_ARCHS, _spec
from repro.core.kernel import MachKernel
from repro.core.constants import VMProt
from repro.pmap.interface import ShootdownStrategy
from repro.sched.scheduler import Scheduler

# ======================================================================
# Static half 1/2: the guarded-by contract
# ======================================================================

#: module (package-relative) -> class names whose ``__init__``
#: attributes participate in the guarded-by contract.
GUARDED_CLASSES: dict[str, tuple[str, ...]] = {
    "core.kernel": ("MachKernel",),
    "core.address_map": ("AddressMap",),
    "core.vm_object": ("VMObject",),
    "core.resident": ("ResidentPageTable",),
}

#: Variable names conventionally bound to instances of each guarded
#: class.  Attribute stores are matched by (receiver name, attribute)
#: because Python has no static types; the hints keep ``inode.size``
#: from matching ``VMObject.size``.
RECEIVER_HINTS: dict[str, tuple[str, ...]] = {
    "MachKernel": ("kernel",),
    "AddressMap": ("vm_map", "submap", "sharing_map", "dst_map",
                   "src_map", "map"),
    "VMObject": ("obj", "vm_object", "existing", "backing", "victim",
                 "new_object", "shadow_object"),
    "ResidentPageTable": ("resident",),
}

#: discipline name -> package-relative module prefixes (beyond the
#: owning module, which is always allowed) that may mutate attributes
#: declared under it.  An empty tuple means owner-module only.
DISCIPLINES: dict[str, tuple[str, ...]] = {
    #: The address-map lock: only map code mutates map bookkeeping.
    "map-lock": (),
    #: The object lock as held by the fault/pageout/kernel funnel.
    "object-lock": ("core.kernel", "core.fault", "core.pageout"),
    #: Reference/shadow-chain state: object-manager internal.
    "object-ref": (),
    #: Pager attach-time attributes, set while servicing pager replies.
    "pager-init": ("pager",),
    #: Debug/sanitizer hooks: only the analysis package may arm them.
    "debug-hook": ("analysis",),
    #: Wired once at kernel boot, never retargeted afterwards.
    "boot-wiring": ("core.kernel",),
    #: The kernel's scheduler back-pointer: attached once by the
    #: scheduler's own constructor, never retargeted mid-run.
    "sched-wiring": ("core.kernel", "sched.scheduler"),
    #: Pager policy knobs: set while single-threaded, before load is
    #: driven — benches configure them per cell.
    "pager-tuning": ("bench",),
    #: Kernel-task state mutated only inside the kernel funnel itself.
    "kernel-funnel": (),
}

_GUARD_COMMENT = re.compile(r"#:?\s*guarded-by\b")
_GUARD_RE = re.compile(r"#:\s*guarded-by\s+([A-Za-z][A-Za-z0-9_-]*)\s*$")


@dataclass(frozen=True)
class GuardDecl:
    """One ``#: guarded-by`` declaration on a class attribute."""

    cls: str
    attr: str
    discipline: str
    module: str      # owning module, package-relative
    lineno: int


def _parse_class_guards(source: str, module: str, class_names: Sequence[str]
                        ) -> tuple[dict[str, dict[str, GuardDecl]],
                                   dict[str, set[str]],
                                   list[LintViolation],
                                   set[int]]:
    """Parse one guarded module: declarations, full attribute sets,
    malformed-annotation violations, and consumed annotation lines."""
    lines = source.splitlines()
    tree = ast.parse(source)
    decls: dict[str, dict[str, GuardDecl]] = {}
    attrs: dict[str, set[str]] = {}
    violations: list[LintViolation] = []
    consumed: set[int] = set()
    for node in tree.body:
        if not isinstance(node, ast.ClassDef) or node.name not in class_names:
            continue
        decls[node.name] = {}
        attrs[node.name] = set()
        init = next((n for n in node.body
                     if isinstance(n, ast.FunctionDef)
                     and n.name == "__init__"), None)
        if init is None:
            continue
        for stmt in ast.walk(init):
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attrs[node.name].add(target.attr)
                # An annotation sits on the line immediately above the
                # assignment or trails the assignment itself.
                for lineno in (stmt.lineno - 1, stmt.lineno):
                    text = lines[lineno - 1] if lineno >= 1 else ""
                    if not _GUARD_COMMENT.search(text):
                        continue
                    if (lineno != stmt.lineno
                            and not text.strip().startswith("#")):
                        # A trailing annotation on the previous line
                        # belongs to *that* statement, not this one.
                        continue
                    consumed.add(lineno)
                    match = _GUARD_RE.search(text.strip())
                    if match is None:
                        violations.append(LintViolation(
                            module, lineno, "malformed-guard",
                            f"unparseable guard annotation "
                            f"{text.strip()!r}; expected "
                            f"'#: guarded-by <discipline>'"))
                        continue
                    discipline = match.group(1)
                    if discipline not in DISCIPLINES:
                        violations.append(LintViolation(
                            module, lineno, "malformed-guard",
                            f"unknown discipline {discipline!r} on "
                            f"{node.name}.{target.attr}; known: "
                            f"{', '.join(sorted(DISCIPLINES))}"))
                        continue
                    decls[node.name][target.attr] = GuardDecl(
                        node.name, target.attr, discipline, module,
                        stmt.lineno)
    # Any guard-looking comment not consumed above is unattached.
    for lineno, text in enumerate(lines, start=1):
        if _GUARD_COMMENT.search(text) and lineno not in consumed:
            violations.append(LintViolation(
                module, lineno, "malformed-guard",
                "guard annotation is not attached to a 'self.<attr>' "
                "assignment in the __init__ of a guarded class"))
    return decls, attrs, violations, consumed


def _receiver_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def lint_guarded_by(root: Path, package: str = "repro",
                    guarded: Optional[dict[str, tuple[str, ...]]] = None
                    ) -> list[LintViolation]:
    """Check every attribute store in the tree against the guarded-by
    declarations; returns all violations (empty list = clean)."""
    guarded = guarded if guarded is not None else GUARDED_CLASSES
    decls: dict[str, dict[str, GuardDecl]] = {}
    attrs: dict[str, set[str]] = {}
    owner_of: dict[str, str] = {}
    violations: list[LintViolation] = []
    for module, class_names in guarded.items():
        path = root / (module.replace(".", "/") + ".py")
        if not path.exists():
            violations.append(LintViolation(
                f"{package}.{module}", 0, "malformed-guard",
                f"guarded module {module} not found under {root}"))
            continue
        mod_decls, mod_attrs, mod_violations, _ = _parse_class_guards(
            path.read_text(encoding="utf-8"), f"{package}.{module}",
            class_names)
        decls.update(mod_decls)
        attrs.update(mod_attrs)
        violations.extend(mod_violations)
        for cls in class_names:
            owner_of[cls] = module

    hint_to_classes: dict[str, list[str]] = {}
    for cls in owner_of:
        for hint in RECEIVER_HINTS.get(cls, ()):
            hint_to_classes.setdefault(hint, []).append(cls)

    for path in sorted(root.rglob("*.py")):
        module = _module_name(root, path, package)
        mod_rel = module[len(package) + 1:] if module != package else ""
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue   # layering lint already reports syntax errors
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                recv = _receiver_name(target.value)
                if recv is None or recv == "self":
                    continue
                for cls in hint_to_classes.get(recv, ()):
                    if target.attr not in attrs.get(cls, ()):
                        continue
                    owner = owner_of[cls]
                    if mod_rel == owner:
                        continue
                    decl = decls.get(cls, {}).get(target.attr)
                    if decl is None:
                        violations.append(LintViolation(
                            module, node.lineno,
                            "undeclared-shared-mutable",
                            f"mutates {cls}.{target.attr} (via "
                            f"{recv!r}) outside owning module "
                            f"{package}.{owner}, but the attribute "
                            f"declares no '#: guarded-by' discipline"))
                        continue
                    allowed = (owner,) + DISCIPLINES[decl.discipline]
                    if not any(_within(mod_rel, prefix)
                               for prefix in allowed):
                        violations.append(LintViolation(
                            module, node.lineno, "guarded-by",
                            f"mutates {cls}.{target.attr} (guarded-by "
                            f"{decl.discipline}) from {module}; "
                            f"allowed modules: "
                            f"{', '.join(package + '.' + a for a in allowed)}"))
    violations.sort(key=lambda v: (v.module, v.lineno, v.rule))
    return violations


# ======================================================================
# Static half 2/2: may-yield call-graph and atomicity hazards
# ======================================================================

#: Methods of ``ThreadContext`` that run on the thread's CPU and may
#: fault / suspend — every call is a preemption point.
_CTX_METHODS = ("read", "write", "rmw")

#: Entering the fault handler can block the faulting thread (pager
#: round-trips), so calls into it are preemption points too.
_FAULT_ENTRY = ("vm_fault", "resolve_task_fault")

#: Modules exempt from atomicity-hazard *reporting*: the kernel funnel
#: runs under the map/object locks (checked by the guarded-by half),
#: so its reads cannot go stale across its own fault entries.
_ATOMICITY_EXEMPT = ("core.kernel", "core.fault", "core.pageout")


def _ctx_params(func: ast.FunctionDef) -> set[str]:
    """Parameter names through which *func* receives a ThreadContext."""
    names: set[str] = set()
    for arg in (list(func.args.posonlyargs) + list(func.args.args)
                + list(func.args.kwonlyargs)):
        annotation = arg.annotation
        annotated = (isinstance(annotation, ast.Name)
                     and annotation.id == "ThreadContext") \
            or (isinstance(annotation, ast.Attribute)
                and annotation.attr == "ThreadContext") \
            or (isinstance(annotation, ast.Constant)
                and annotation.value == "ThreadContext")
        if arg.arg == "ctx" or annotated:
            names.add(arg.arg)
    return names


@dataclass
class _FunctionInfo:
    """One function in the may-yield call graph."""

    qualname: str            # "name" or "Class.name"
    node: ast.FunctionDef
    ctx_params: set[str]
    has_primitive: bool = False
    callees: set[str] = field(default_factory=set)


def _iter_functions(tree: ast.Module
                    ) -> Iterable[tuple[str, ast.FunctionDef]]:
    """Every function in the module — module-level, methods, and
    nested (thread bodies are routinely nested in their workload) —
    with a dotted qualname."""
    stack: list[tuple[str, ast.AST]] = [("", tree)]
    while stack:
        prefix, node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                if isinstance(child, ast.FunctionDef):
                    yield qualname, child
                stack.append((qualname + ".", child))
            elif isinstance(child, ast.ClassDef):
                stack.append((f"{prefix}{child.name}.", child))


def _call_name(call: ast.Call) -> Optional[tuple[str, str]]:
    """Classify a call: ("name", f) for ``f(...)``, ("self", m) for
    ``self.m(...)``, ("attr:<recv>", m) for ``recv.m(...)``."""
    func = call.func
    if isinstance(func, ast.Name):
        return ("name", func.id)
    if isinstance(func, ast.Attribute):
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "self":
            return ("self", func.attr)
        if isinstance(recv, ast.Name):
            return (f"attr:{recv.id}", func.attr)
        return ("attr:?", func.attr)
    return None


def _is_preemption_call(call: ast.Call, ctx_names: set[str]) -> bool:
    kind = _call_name(call)
    if kind is None:
        return False
    tag, name = kind
    if name in _FAULT_ENTRY:
        return True
    if name in _CTX_METHODS and tag.startswith("attr:"):
        recv = tag[5:]
        return recv in ctx_names
    return False


def _walk_shallow(root: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` without descending into nested function/class
    definitions — their events belong to the nested scope."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)
            yield child


def _build_call_graph(tree: ast.Module
                      ) -> tuple[dict[str, _FunctionInfo], set[str]]:
    """Collect every function, its preemption primitives, and the
    intra-module call edges.  A plain ``f(...)`` or ``self.m(...)``
    call resolves (conservatively) to every same-module function whose
    terminal name matches.  Returns (infos, thread_bodies)."""
    infos: dict[str, _FunctionInfo] = {}
    by_name: dict[str, list[str]] = {}
    for qualname, func in _iter_functions(tree):
        infos[qualname] = _FunctionInfo(qualname, func, _ctx_params(func))
        by_name.setdefault(func.name, []).append(qualname)
    spawned_names = _spawned_names(tree)
    thread_bodies = {
        qualname for qualname, info in infos.items()
        if info.ctx_params
        or info.node.name in spawned_names
    }
    for qualname, info in infos.items():
        is_thread_body = qualname in thread_bodies
        for node in _walk_shallow(info.node):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                # A bare generator helper's yields are iteration, not
                # preemption; only thread bodies preempt at yield.
                if is_thread_body:
                    info.has_primitive = True
            elif isinstance(node, ast.Call):
                if _is_preemption_call(node, info.ctx_params):
                    info.has_primitive = True
                kind = _call_name(node)
                if kind is None:
                    continue
                tag, name = kind
                if tag in ("name", "self"):
                    for candidate in by_name.get(name, ()):
                        if candidate != qualname:
                            info.callees.add(candidate)
    return infos, thread_bodies


def _spawned_names(tree: ast.Module) -> set[str]:
    """Function names passed to ``<scheduler>.spawn(task, body)`` —
    thread bodies even when their parameter is not named ``ctx``."""
    spawned: set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "spawn"):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name):
                    spawned.add(arg.id)
    return spawned


def _may_yield_set(infos: dict[str, _FunctionInfo]) -> set[str]:
    """Fixpoint: a function may yield when it has a primitive or calls
    (transitively, within the module) something that does."""
    may_yield = {q for q, info in infos.items() if info.has_primitive}
    changed = True
    while changed:
        changed = False
        for qualname, info in infos.items():
            if qualname in may_yield:
                continue
            if info.callees & may_yield:
                may_yield.add(qualname)
                changed = True
    return may_yield


#: Attributes treated as shared kernel state by the atomicity scan:
#: everything the guarded classes own, plus map-entry fields.
_SHARED_STATE_ATTRS = frozenset({
    "size", "ref_count", "pager", "pager_initialized", "shadow",
    "shadow_offset", "internal", "temporary", "can_persist", "cached",
    "terminated", "pager_dead", "paging_in_progress", "nentries",
    "vm_object", "offset", "needs_copy", "protection", "inheritance",
    "wired", "busy", "dirty", "free_target", "free_min",
})


def _linearize(func: ast.FunctionDef, ctx_names: set[str],
               may_yield_names: set[str],
               is_thread_body: bool) -> list[tuple]:
    """Flatten *func* into source-ordered events for the hazard scan.

    Event shapes: ``("read", attr, line)``, ``("write", attr, line)``,
    ``("preempt", line)``, ``("ctx-read", local, line)``,
    ``("ctx-write", arg_names, line)``.  Control flow is linearized
    (all branches in order) — a deliberate over-approximation for a
    lint.
    """
    events: list[tuple] = []
    for node in _walk_shallow(func):
        line = getattr(node, "lineno", 0)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if is_thread_body:
                events.append(("preempt", line, "yield"))
        elif isinstance(node, ast.Attribute):
            if node.attr not in _SHARED_STATE_ATTRS:
                continue
            if isinstance(node.ctx, ast.Load):
                events.append(("read", node.attr, line))
            elif isinstance(node.ctx, (ast.Store, ast.Del)):
                events.append(("write", node.attr, line))
        elif isinstance(node, ast.Call):
            kind = _call_name(node)
            if kind is None:
                continue
            tag, name = kind
            preempts = _is_preemption_call(node, ctx_names)
            if not preempts and tag in ("name", "self"):
                preempts = name in may_yield_names
            if preempts:
                events.append(("preempt", line,
                               f"call to {name}"))
            if (tag.startswith("attr:") and tag[5:] in ctx_names
                    and name in ("write", "rmw")):
                # Collect names *anywhere* in the argument expressions:
                # ``ctx.write(addr, bytes([v + 1]))`` writes a value
                # derived from ``v`` just as surely as passing it bare.
                args = tuple(sub.id for a in node.args
                             for sub in ast.walk(a)
                             if isinstance(sub, ast.Name))
                events.append(("ctx-write", args, line))
        elif isinstance(node, ast.Assign):
            value = node.value
            # ``v = ctx.read(a, 1)[0]`` reads just as surely as
            # ``v = ctx.read(a, 1)`` — unwrap subscripting.
            while isinstance(value, ast.Subscript):
                value = value.value
            if (isinstance(value, ast.Call)):
                kind = _call_name(value)
                if (kind and kind[0].startswith("attr:")
                        and kind[0][5:] in ctx_names
                        and kind[1] in ("read", "rmw")):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            events.append(("ctx-read", target.id,
                                           node.lineno))
    # Same-line ordering: argument reads happen before the call
    # preempts, a value assigned *from* a ctx read is fresh after its
    # own preemption point, and attribute stores land last.
    rank = {"read": 0, "ctx-write": 1, "preempt": 2, "ctx-read": 3,
            "write": 4}
    events.sort(key=lambda e: (e[1] if e[0] == "preempt" else e[-1],
                               rank[e[0]]))
    return events


def _scan_function(module: str, qualname: str,
                   events: list[tuple]) -> list[LintViolation]:
    violations: list[LintViolation] = []
    read_at: dict[str, int] = {}
    stale: dict[str, tuple[int, int]] = {}
    local_read_at: dict[str, int] = {}
    stale_locals: dict[str, tuple[int, int]] = {}
    for event in events:
        kind = event[0]
        if kind == "preempt":
            _, line, why = event
            for attr, rline in read_at.items():
                stale.setdefault(attr, (rline, line))
            read_at.clear()
            for name, rline in local_read_at.items():
                stale_locals.setdefault(name, (rline, line))
            local_read_at.clear()
        elif kind == "read":
            _, attr, line = event
            read_at.setdefault(attr, line)
        elif kind == "write":
            _, attr, line = event
            if attr in stale:
                rline, pline = stale[attr]
                violations.append(LintViolation(
                    module, line, "atomicity-hazard",
                    f"{qualname} reads shared '.{attr}' at line "
                    f"{rline}, may yield at line {pline}, then writes "
                    f"'.{attr}' at line {line} — the read can be stale "
                    f"by the time the write lands"))
            stale.pop(attr, None)
            read_at.pop(attr, None)
        elif kind == "ctx-read":
            _, name, line = event
            local_read_at[name] = line
            stale_locals.pop(name, None)
        elif kind == "ctx-write":
            _, args, line = event
            for name in args:
                if name in stale_locals:
                    rline, pline = stale_locals[name]
                    violations.append(LintViolation(
                        module, line, "stale-read-across-yield",
                        f"{qualname} writes value {name!r} read from "
                        f"memory at line {rline} after a preemption "
                        f"point at line {pline} — a lost update under "
                        f"any schedule that interleaves there"))
    return violations


def lint_atomicity_source(source: str, module: str = "<snippet>"
                          ) -> list[LintViolation]:
    """May-yield atomicity lint for one module's source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [LintViolation(module, exc.lineno or 0, "syntax-error",
                              "module failed to parse")]
    infos, thread_bodies = _build_call_graph(tree)
    may_yield = _may_yield_set(infos)
    may_yield_names = {infos[q].node.name for q in may_yield}
    violations: list[LintViolation] = []
    for qualname, info in infos.items():
        if qualname not in may_yield:
            continue
        events = _linearize(info.node, info.ctx_params, may_yield_names,
                            qualname in thread_bodies)
        violations.extend(_scan_function(module, qualname, events))
    violations.sort(key=lambda v: (v.module, v.lineno, v.rule))
    return violations


def lint_atomicity(root: Path, package: str = "repro"
                   ) -> list[LintViolation]:
    """May-yield atomicity lint over a package tree."""
    violations: list[LintViolation] = []
    for path in sorted(root.rglob("*.py")):
        module = _module_name(root, path, package)
        mod_rel = module[len(package) + 1:] if module != package else ""
        if any(_within(mod_rel, exempt) for exempt in _ATOMICITY_EXEMPT):
            continue
        violations.extend(lint_atomicity_source(
            path.read_text(encoding="utf-8"), module))
    return violations


def lint_concurrency(root: Path, package: str = "repro"
                     ) -> list[LintViolation]:
    """The full static concurrency lint: guarded-by + atomicity."""
    violations = lint_guarded_by(root, package)
    violations.extend(lint_atomicity(root, package))
    violations.sort(key=lambda v: (v.module, v.lineno, v.rule))
    return violations


#: Part of the lint cache key: bump on any rule/behavior change.
LINT_VERSION = "1"


def lint_source_concurrency() -> list[LintViolation]:
    """Run the concurrency lint on the installed ``repro`` package."""
    import repro
    return lint_concurrency(Path(repro.__file__).resolve().parent)


# ======================================================================
# Dynamic half: the happens-before checker
# ======================================================================


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped happening, for replayable provenance."""

    order: int
    cpu: Optional[int]
    kind: str
    detail: str

    def __str__(self) -> str:
        where = f"cpu{self.cpu}" if self.cpu is not None else "----"
        return f"#{self.order:<6} {where:<5} {self.kind:<12} {self.detail}"


@dataclass
class InvalidationWindow:
    """One shootdown as seen by the checker: which virtual range of
    which pmap was invalidated, and in what state each CPU's copy is."""

    order: int
    origin_cpu: int
    pmap_tag: int
    pmap_name: str
    start: int
    end: int
    strategy: ShootdownStrategy
    forced: bool
    #: cpu -> "flushed" | "deferred" | "lazy" | "closed".  CPUs absent
    #: here were not tainted by the pmap ("untracked").
    status: dict[int, str]
    vc: tuple[int, ...]

    def covers(self, vpn: int, hw_page_size: int) -> bool:
        first = self.start // hw_page_size
        last = (self.end + hw_page_size - 1) // hw_page_size
        return first <= vpn < last

    def engulfed_by(self, start: int, end: int) -> bool:
        return start <= self.start and self.end <= end


@dataclass(frozen=True)
class RaceReport:
    """A CPU consumed a translation invalidated outside any open
    window — with the evidence needed to replay and diagnose it."""

    cpu: int
    pmap_name: str
    vpn: int
    fill_order: int
    window: InvalidationWindow
    status: str
    trace: tuple[TraceEvent, ...]

    def __str__(self) -> str:
        head = (f"race: cpu{self.cpu} hit stale TLB entry for "
                f"{self.pmap_name} vpn={self.vpn:#x} "
                f"(filled at #{self.fill_order}, invalidated at "
                f"#{self.window.order} by cpu{self.window.origin_cpu}, "
                f"strategy={self.window.strategy.value}, "
                f"window status={self.status!r})")
        lines = [head, "  recent events:"]
        lines += [f"    {event}" for event in self.trace]
        return "\n".join(lines)


class RaceDetector:
    """Vector-clock happens-before checking over the kernel's event bus.

    Install on a booted kernel (and optionally a scheduler); the
    detector subscribes to ``kernel.events`` and timestamps every
    pmap/TLB mutation and TLB-backed access.  A TLB hit whose fill
    predates an invalidation of that translation is a race unless the
    responsible shootdown window is still legally open on the hitting
    CPU:

    ========== =============================================
    strategy   staleness sanctioned
    ========== =============================================
    IMMEDIATE  never (flushes are synchronous IPIs)
    DEFERRED   until that CPU's next timer tick
    LAZY       until the next activate-time flush (unforced)
    ========== =============================================

    Reports accumulate in :attr:`races`; pass ``raise_on_race=True`` to
    fail fast.  Counters mirror into ``kernel.stats``
    (``race_events_timestamped``, ``races_found``).
    """

    TRACE_RING = 24

    def __init__(self, kernel: MachKernel,
                 scheduler: Optional[Scheduler] = None,
                 raise_on_race: bool = False) -> None:
        self.kernel = kernel
        self.scheduler = scheduler
        self.raise_on_race = raise_on_race
        ncpus = len(kernel.machine.cpus)
        self.ncpus = ncpus
        #: Per-CPU vector clocks.
        self.clocks: list[list[int]] = [[0] * ncpus for _ in range(ncpus)]
        self._order = 0
        #: (cpu, pmap_tag, vpn) -> order of the fill.
        self.fills: dict[tuple[int, int, int], int] = {}
        #: pmap_tag -> live invalidation windows.
        self.windows: dict[int, list[InvalidationWindow]] = {}
        self.races: list[RaceReport] = []
        self.events_timestamped = 0
        self._trace: deque[TraceEvent] = deque(maxlen=self.TRACE_RING)
        self._reported: set[tuple[int, int, int, int]] = set()
        self._pmap_names: dict[int, str] = {}
        self._installed = False
        self._hw_page_size = kernel.machine.cpus[0].tlb.page_size

    # -- event plumbing -------------------------------------------------

    def _tick_clock(self, cpu: Optional[int]) -> None:
        if cpu is not None:
            self.clocks[cpu][cpu] += 1

    def _join(self, cpu: int, vc: Sequence[int]) -> None:
        own = self.clocks[cpu]
        for i, value in enumerate(vc):
            if value > own[i]:
                own[i] = value

    def _event(self, cpu: Optional[int], kind: str, detail: str) -> int:
        self._order += 1
        self._tick_clock(cpu)
        self.events_timestamped += 1
        self.kernel.stats.race_events_timestamped += 1
        self._trace.append(TraceEvent(self._order, cpu, kind, detail))
        return self._order

    # -- installation ---------------------------------------------------

    def install(self) -> "RaceDetector":
        """Subscribe to the kernel's event bus; returns self for
        chaining."""
        if self._installed:
            return self
        self.kernel.events.subscribe(self._on_event)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        self.kernel.events.unsubscribe(self._on_event)
        self._installed = False

    # -- bus dispatch ---------------------------------------------------

    def _on_event(self, event) -> None:
        """One subscriber for everything: route the event kinds the
        happens-before model consumes, ignore the rest of the bus."""
        subsystem, kind, data = event.subsystem, event.kind, event.data
        if subsystem == "tlb":
            cpu_id = event.cpu
            if kind == "hit":
                self._on_hit(cpu_id, data["tag"], data["vpn"])
            elif kind == "fill":
                self._on_fill(cpu_id, data["tag"], data["vpn"])
            elif kind == "drop":
                self._on_drop(cpu_id, data["tag"], data["vpn"])
            elif kind == "flush_range":
                self._on_range_flushed(cpu_id, data["tag"],
                                       data["start"], data["end"])
            elif kind == "flush_pmap":
                self._on_pmap_flushed(cpu_id, data["tag"])
            elif kind == "flush_all":
                self._on_full_flushed(cpu_id)
        elif subsystem == "cpu":
            if kind == "tick":
                self._on_tick(event.cpu)
        elif subsystem == "pmap":
            if kind == "shootdown":
                self._on_shootdown(data["pmap"], data["start"],
                                   data["end"], data["strategy"],
                                   data["forced"], data["actions"])
        elif subsystem == "sched":
            if kind == "slice" and self.scheduler is not None:
                self._on_slice(data["sched_thread"], data["to_cpu"])

    # -- event handlers -------------------------------------------------

    def _name_for(self, tag: int) -> str:
        return self._pmap_names.get(tag, f"pmap@{tag:#x}")

    def _on_shootdown(self, pmap, start: int, end: int,
                      strategy: ShootdownStrategy, forced: bool,
                      actions: tuple) -> None:
        tag = id(pmap)
        self._pmap_names[tag] = getattr(pmap, "name", "") or f"{tag:#x}"
        origin = self.kernel.pmap_system.current_cpu_id
        order = self._event(
            origin, "shootdown",
            f"{self._name_for(tag)} [{start:#x},{end:#x}) "
            f"{strategy.value}{' forced' if forced else ''} "
            f"targets={[f'cpu{c}:{a}' for c, a in actions]}")
        status: dict[int, str] = {}
        for cpu_id, action in actions:
            if action in ("local", "ipi"):
                # Will be marked "flushed" when the flush thunk fires;
                # start from the sanctioned-in-flight state.
                status[cpu_id] = "deferred" if action == "ipi" \
                    else "flushed"
            elif action == "deferred":
                status[cpu_id] = "deferred"
            else:
                status[cpu_id] = "lazy"
        window = InvalidationWindow(
            order=order, origin_cpu=origin, pmap_tag=tag,
            pmap_name=self._name_for(tag), start=start, end=end,
            strategy=strategy, forced=forced, status=status,
            vc=tuple(self.clocks[origin]))
        live = self.windows.setdefault(tag, [])
        live.append(window)
        # Bound memory: drop oldest fully-flushed windows.
        if len(live) > 512:
            live[:] = [w for w in live
                       if any(s != "flushed" for s in w.status.values())
                       ] + live[-64:]

    def _on_slice(self, sched_thread, cpu_id: int) -> None:
        # A thread migrating between CPUs carries its causal history.
        previous = sched_thread.context.cpu_id
        if previous is not None and previous != cpu_id:
            self._join(cpu_id, self.clocks[previous])
        self._event(cpu_id, "slice",
                    f"thread #{sched_thread.sched_id} "
                    f"({sched_thread.task.name})")

    def _on_tick(self, cpu_id: int) -> None:
        self._event(cpu_id, "tick", f"timer tick on cpu{cpu_id}")
        # The tick closes every DEFERRED window for this CPU: its flush
        # thunks have just drained (marking "flushed" via the range
        # hook).  A window still "deferred" after its drain lost the
        # flush — consuming it afterwards is a race.
        for windows in self.windows.values():
            for window in windows:
                if window.status.get(cpu_id) == "deferred":
                    window.status[cpu_id] = "closed"

    def _on_hit(self, cpu_id: int, tag: int, vpn: int) -> None:
        self._event(cpu_id, "tlb-hit",
                    f"{self._name_for(tag)} vpn={vpn:#x}")
        fill_order = self.fills.get((cpu_id, tag, vpn), 0)
        for window in self.windows.get(tag, ()):
            if window.order <= fill_order:
                continue
            if not window.covers(vpn, self._hw_page_size):
                continue
            status = window.status.get(cpu_id, "untracked")
            if status in ("deferred", "lazy"):
                continue   # legally stale: window still open
            if status == "untracked":
                continue   # pmap never tainted this CPU
            key = (cpu_id, tag, vpn, window.order)
            if key in self._reported:
                continue
            self._reported.add(key)
            report = RaceReport(
                cpu=cpu_id, pmap_name=self._name_for(tag), vpn=vpn,
                fill_order=fill_order, window=window, status=status,
                trace=tuple(self._trace))
            self.races.append(report)
            self.kernel.stats.races_found += 1
            if self.raise_on_race:
                raise AssertionError(str(report))

    def _on_fill(self, cpu_id: int, tag: int, vpn: int) -> None:
        order = self._event(cpu_id, "tlb-fill",
                            f"{self._name_for(tag)} vpn={vpn:#x}")
        self.fills[(cpu_id, tag, vpn)] = order

    def _on_drop(self, cpu_id: int, tag: int, vpn: int) -> None:
        self._event(cpu_id, "tlb-drop",
                    f"{self._name_for(tag)} vpn={vpn:#x}")
        self.fills.pop((cpu_id, tag, vpn), None)

    def _close_windows(self, cpu_id: int, tag: Optional[int],
                       start: Optional[int] = None,
                       end: Optional[int] = None) -> None:
        for wtag, windows in self.windows.items():
            if tag is not None and wtag != tag:
                continue
            for window in windows:
                if cpu_id not in window.status:
                    continue
                if (start is not None
                        and not window.engulfed_by(start, end)):
                    continue
                if window.status[cpu_id] != "flushed":
                    window.status[cpu_id] = "flushed"
                    self._join(cpu_id, window.vc)

    def _on_range_flushed(self, cpu_id: int, tag: int,
                          start: int, end: int) -> None:
        self._event(cpu_id, "tlb-flush",
                    f"{self._name_for(tag)} [{start:#x},{end:#x})")
        self._close_windows(cpu_id, tag, start, end)

    def _on_pmap_flushed(self, cpu_id: int, tag: int) -> None:
        self._event(cpu_id, "tlb-flush",
                    f"{self._name_for(tag)} (whole pmap)")
        self._close_windows(cpu_id, tag)

    def _on_full_flushed(self, cpu_id: int) -> None:
        self._event(cpu_id, "tlb-flush", "all entries")
        self._close_windows(cpu_id, None)


# ======================================================================
# The storm: seeded-random schedules over arch x strategy
# ======================================================================

KB = 1024

#: Default base seed of the storm (a different universe per --seed).
DEFAULT_SEED = 0xACE5

QUICK_ARCHS = ("generic", "vax", "sun3")


def cell_seed(base_seed: int, arch: str, strategy: str,
              workload: str) -> int:
    """Stable per-cell seed: reproducing one cell never requires
    running the others."""
    token = f"{arch}:{strategy}:{workload}".encode()
    return (base_seed ^ zlib.crc32(token)) & 0xFFFFFFFF


@dataclass
class RaceCellResult:
    """Outcome of one (arch, strategy) storm cell."""

    arch: str
    strategy: str
    seed: int
    ok: bool
    races: int
    events: int
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "RACE" if self.races else "FAIL"
        tail = f": {self.detail}" if self.detail else ""
        return (f"{self.arch:<10} {self.strategy:<10} {status:<5} "
                f"races={self.races:<3} events={self.events:<7} "
                f"[replay: seed={self.seed:#x}]{tail}")


def _storm_fork_cow(kernel: MachKernel, sched: Scheduler) -> None:
    """Forking under preemption: COW protect/copy shootdowns while
    parent, child and grandchild threads keep writing."""
    page = kernel.page_size
    strict = kernel.pmap_system.strategy is ShootdownStrategy.IMMEDIATE
    parent = kernel.task_create(name="storm-parent")
    addr = parent.vm_allocate(8 * page)
    for off in range(0, 8 * page, page):
        parent.write(addr + off, bytes([off // page + 1]))
    child = parent.fork()
    grandchild = child.fork()

    def writer(ctx):
        for off in range(0, 8 * page, page):
            ctx.write(addr + off, bytes([17 + off // page]))
            yield
        for off in range(0, 8 * page, page):
            got = ctx.read(addr + off, 1)[0]
            # DEFERRED/LAZY legally serve the pre-COW frame while the
            # shootdown window is open; IMMEDIATE must be coherent.
            expected = (17 + off // page,) if strict \
                else (17 + off // page, off // page + 1)
            assert got in expected, (off, got)
            yield

    sched.spawn(parent, writer, name="parent-w")
    sched.spawn(child, writer, name="child-w")
    sched.spawn(grandchild, writer, name="grandchild-w")
    sched.run()
    child.terminate()
    grandchild.terminate()


def _storm_pageout(kernel: MachKernel, sched: Scheduler) -> None:
    """Memory pressure under preemption: the paging daemon's forced
    shootdowns against threads holding warm TLB entries."""
    page = kernel.page_size
    strict = kernel.pmap_system.strategy is ShootdownStrategy.IMMEDIATE
    hogs = [kernel.task_create(name=f"hog{i}") for i in range(2)]
    spans = [task.vm_allocate(24 * page) for task in hogs]

    def hog(ctx):
        base = spans[hogs.index(ctx.task)]
        for off in range(0, 24 * page, page):
            ctx.write(base + off, bytes([off // page % 200 + 1]))
            yield
        for off in range(0, 24 * page, 4 * page):
            got = ctx.read(base + off, 1)[0]
            # Reclaim + refault relocates frames; inside an open
            # DEFERRED window a stale translation may still reach the
            # old frame, so only IMMEDIATE pins the exact byte.
            if strict:
                assert got == off // page % 200 + 1, (off, got)
            yield

    for task in hogs:
        sched.spawn(task, hog, name=f"{task.name}-t")
    sched.run()
    kernel.pageout_daemon.run()


def _storm_shootdown(kernel: MachKernel, sched: Scheduler) -> None:
    """Cross-CPU protect/deallocate against concurrent readers: the
    Section 5.2 scenario itself."""
    page = kernel.page_size
    task = kernel.task_create(name="storm-smp")
    addr = task.vm_allocate(12 * page)
    for off in range(0, 12 * page, page):
        task.write(addr + off, b"s")

    def toucher(ctx):
        for off in range(0, 4 * page, page):
            ctx.write(addr + off, b"T")
            yield
            assert ctx.read(addr + off, 1) == b"T"
            yield

    def reader(ctx):
        for _ in range(2):
            for off in range(4 * page, 8 * page, page):
                assert ctx.read(addr + off, 1) in (b"s", b"T")
                yield

    def demoter(ctx):
        yield
        ctx.task.vm_protect(addr + 4 * page, 4 * page, False,
                            VMProt.READ)
        yield
        ctx.task.vm_deallocate(addr + 8 * page, 4 * page)
        yield

    sched.spawn(task, toucher, name="toucher")
    sched.spawn(task, reader, name="reader")
    sched.spawn(task, demoter, name="demoter")
    sched.run()


STORM_WORKLOADS = (
    ("fork+COW", _storm_fork_cow, {}),
    ("pageout-pressure", _storm_pageout, dict(memory_frames=48)),
    ("shootdown", _storm_shootdown, {}),
)


def run_race_cell(arch: str, strategy: ShootdownStrategy,
                  seed: int) -> RaceCellResult:
    """One storm cell: every workload on (arch, strategy) under a
    seeded-random schedule, detector armed throughout."""
    races = 0
    events = 0
    detail = ""
    ok = True
    for workload_name, workload, overrides in STORM_WORKLOADS:
        wseed = cell_seed(seed, arch, strategy.value, workload_name)
        kernel = MachKernel(_spec(arch, ncpus=4, **overrides),
                            shootdown=strategy)
        sched = Scheduler(kernel, timer_tick_every=4,
                          policy=SeededRandomPolicy(wseed))
        detector = RaceDetector(kernel, sched).install()
        try:
            workload(kernel, sched)
            kernel.pmap_system.update()
            if strategy is ShootdownStrategy.LAZY:
                # LAZY bounds staleness at activate time; emulate the
                # bound before auditing, as pageout must (Section 5.2).
                for cpu in kernel.machine.cpus:
                    cpu.tlb.flush_all()
            kernel.set_current_cpu(0)
            assert_all(kernel)
        except Exception as exc:   # noqa: BLE001 - reported per cell
            ok = False
            detail = f"{workload_name}: {type(exc).__name__}: {exc}"
        finally:
            detector.uninstall()
        races += len(detector.races)
        events += detector.events_timestamped
        if detector.races and not detail:
            ok = False
            detail = f"{workload_name}: {detector.races[0]}"
        if not ok:
            break
    return RaceCellResult(arch=arch, strategy=strategy.value, seed=seed,
                          ok=ok, races=races, events=events,
                          detail=detail)


def _run_storm_cell(cell: tuple[str, str, int]) -> RaceCellResult:
    """One (arch, strategy-value, seed) storm cell — module-level so a
    process pool can pickle it."""
    arch, strategy_value, seed = cell
    return run_race_cell(arch, ShootdownStrategy(strategy_value), seed)


def run_races(archs: Optional[Sequence[str]] = None,
              strategies: Optional[Sequence[ShootdownStrategy]] = None,
              seed: int = DEFAULT_SEED, quick: bool = False,
              verbose: bool = False,
              jobs: int | None = None) -> list[RaceCellResult]:
    """The full storm: arch x strategy cells, each printing its replay
    seed.  A correct kernel yields zero races in every cell — DEFERRED
    and LAZY staleness inside open windows is sanctioned, and
    IMMEDIATE flushes synchronously.  Cells are seeded and independent;
    ``jobs > 1`` fans them out over a process pool (fork), with results
    returned in matrix order."""
    if archs is None:
        archs = QUICK_ARCHS if quick else tuple(SWEEP_ARCHS)
    if strategies is None:
        strategies = tuple(ShootdownStrategy)
    cells = [(arch, strategy.value, seed)
             for arch in archs for strategy in strategies]
    results: list[RaceCellResult] = []
    if jobs is not None and jobs > 1 and len(cells) > 1:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(jobs, len(cells))) as pool:
            for result in pool.imap(_run_storm_cell, cells):
                results.append(result)
                if verbose:
                    print(str(result))
    else:
        for cell in cells:
            results.append(_run_storm_cell(cell))
            if verbose:
                print(str(results[-1]))
    return results


# ======================================================================
# Systematic exploration (--explore)
# ======================================================================


def _explore_run(arch: str, strategy: ShootdownStrategy,
                 policy: RecordingPolicy) -> dict:
    """One schedule of a small two-thread shootdown workload, state
    hashed for pruning, audited by detector + invariants."""
    kernel = MachKernel(_spec(arch, ncpus=2), shootdown=strategy)
    sched = Scheduler(kernel, timer_tick_every=2, policy=policy)
    detector = RaceDetector(kernel, sched).install()
    page = kernel.page_size
    task = kernel.task_create(name="explore")
    addr = task.vm_allocate(4 * page)
    for off in range(0, 4 * page, page):
        task.write(addr + off, b"e")

    policy.state_fn = lambda: hash((
        tuple(sorted(detector.fills)),
        kernel.stats.faults,
        tuple(len(w) for w in detector.windows.values()),
    ))

    def reader(ctx):
        for off in range(0, 4 * page, page):
            assert ctx.read(addr + off, 1) in (b"e", b"w")
            yield

    def mutator(ctx):
        ctx.write(addr, b"w")
        yield
        ctx.task.vm_protect(addr + 2 * page, 2 * page, False,
                            VMProt.READ)
        yield

    sched.spawn(task, reader, name="reader")
    sched.spawn(task, mutator, name="mutator")
    try:
        sched.run()
        kernel.pmap_system.update()
        if strategy is ShootdownStrategy.LAZY:
            for cpu in kernel.machine.cpus:
                cpu.tlb.flush_all()
        kernel.set_current_cpu(0)
        assert_all(kernel)
    except Exception as exc:   # noqa: BLE001 - a finding, not a crash
        detector.uninstall()
        return {"ok": False, "detail": f"{type(exc).__name__}: {exc}"}
    detector.uninstall()
    if detector.races:
        return {"ok": False, "detail": str(detector.races[0])}
    return {"ok": True}


def explore_shootdown(arch: str = "generic",
                      strategy: ShootdownStrategy =
                      ShootdownStrategy.DEFERRED,
                      max_schedules: int = 150,
                      kernel_stats=None) -> ExplorationResult:
    """Bounded DFS over schedules of the small shootdown workload."""
    result = explore_schedules(
        lambda policy: _explore_run(arch, strategy, policy),
        max_schedules=max_schedules)
    if kernel_stats is not None:
        kernel_stats.schedules_explored += result.schedules_explored
    return result
