"""Schedule policies and systematic interleaving exploration.

The scheduler's default round-robin policy explores exactly one
interleaving, so it can never witness the races Section 5.2 of the
paper reasons about.  This module supplies the other policies the
concurrency sanitizer needs:

* :class:`SeededRandomPolicy` — a reproducible random walk through the
  schedule space; the seed *is* the replay token.
* :class:`RecordingPolicy` — replays a fixed prefix of decisions (then
  defaults to the queue head) while recording every decision point it
  passes, which is the substrate for systematic exploration.
* :func:`explore_schedules` — a bounded depth-first enumeration of
  schedules with state-hash pruning: the stateless-model-checking loop
  of systematic concurrency testing, sized for the simulator's small
  thread counts.

Only the *protocol* (``SchedulePolicy``) lives in
:mod:`repro.sched.scheduler`; the scheduler never imports this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.sched.scheduler import SchedulePolicy


class SeededRandomPolicy(SchedulePolicy):
    """Pick a uniformly random ready thread; deterministic per seed."""

    name = "seeded-random"

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, ready) -> int:
        return self._rng.randrange(len(ready))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        return f"SeededRandomPolicy(seed={self.seed:#x})"


@dataclass(frozen=True)
class Decision:
    """One recorded decision point: how many threads were runnable,
    which index ran, and a hash of the system state at the point of
    choice (``None`` when no ``state_fn`` was provided)."""

    choices: int
    chosen: int
    state: Optional[int]


class RecordingPolicy(SchedulePolicy):
    """Replay *prefix*, then default to index 0, recording everything.

    A schedule is identified by the tuple of indices chosen at each
    decision point.  Running with ``prefix=()`` records the default
    schedule; running with a longer prefix steers the first
    ``len(prefix)`` decisions.  ``state_fn`` (set after the system under
    test is built) hashes the current state so the explorer can prune
    schedules that re-enter an already-explored state at the same
    branch.
    """

    name = "recording"

    def __init__(self, prefix: Sequence[int] = (),
                 state_fn: Optional[Callable[[], int]] = None) -> None:
        self.prefix = tuple(prefix)
        self.state_fn = state_fn
        self.trace: list[Decision] = []

    def choose(self, ready) -> int:
        n = len(ready)
        depth = len(self.trace)
        chosen = self.prefix[depth] % n if depth < len(self.prefix) else 0
        state = self.state_fn() if self.state_fn is not None else None
        self.trace.append(Decision(choices=n, chosen=chosen, state=state))
        return chosen

    def reset(self) -> None:
        self.trace = []

    def choices_made(self) -> tuple[int, ...]:
        """The schedule actually executed, replayable as a prefix."""
        return tuple(d.chosen for d in self.trace)


@dataclass
class ExplorationResult:
    """What a bounded DFS over schedules saw."""

    schedules_explored: int = 0
    decision_points: int = 0
    pruned: int = 0
    #: ``(prefix, detail)`` per failing schedule; the prefix replays the
    #: failure through :class:`RecordingPolicy`.
    failures: list[tuple[tuple[int, ...], str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def explore_schedules(run_schedule: Callable[[RecordingPolicy], dict],
                      max_schedules: int = 200,
                      max_depth: int = 48) -> ExplorationResult:
    """Bounded DFS over thread interleavings.

    *run_schedule* must build a **fresh** system under test, attach
    ``policy.state_fn`` if it wants state-hash pruning, drive the run to
    completion under the policy, and return a dict with at least
    ``{"ok": bool}`` (plus ``"detail"`` describing a failure).  The
    explorer starts from the default schedule and, for every decision
    point it has not steered yet, branches into each untried
    alternative, depth-first, until *max_schedules* runs or exhaustion.

    Pruning: when ``state_fn`` is provided, an alternative branching
    from an already-seen ``(state-hash, alternative)`` pair is skipped —
    two schedules that reach the same state and diverge the same way
    explore the same subtree.
    """
    result = ExplorationResult()
    frontier: list[tuple[int, ...]] = [()]
    scheduled: set[tuple[int, ...]] = {()}
    seen_branches: set[tuple[int, int, int]] = set()
    while frontier and result.schedules_explored < max_schedules:
        prefix = frontier.pop()
        policy = RecordingPolicy(prefix)
        outcome = run_schedule(policy)
        result.schedules_explored += 1
        trace = policy.trace
        result.decision_points = max(result.decision_points, len(trace))
        if not outcome.get("ok", True):
            result.failures.append(
                (policy.choices_made(), str(outcome.get("detail", ""))))
        for depth in range(len(prefix), min(len(trace), max_depth)):
            decision = trace[depth]
            if decision.choices < 2:
                continue
            base = tuple(d.chosen for d in trace[:depth])
            for alt in range(1, decision.choices):
                if decision.state is not None:
                    branch_key = (decision.state, decision.choices, alt)
                    if branch_key in seen_branches:
                        result.pruned += 1
                        continue
                    seen_branches.add(branch_key)
                candidate = base + (alt,)
                if candidate not in scheduled:
                    scheduled.add(candidate)
                    frontier.append(candidate)
    return result
