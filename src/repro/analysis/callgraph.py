"""AST-derived interprocedural call graph with effect summaries.

The four PR 6 flow passes are strictly intraprocedural: a helper that
frees a page its caller still touches, or a wrapper whose transient
error surfaces three frames up, is invisible to them.  This module
supplies the missing layer:

* :func:`build_callgraph` — index every function in the source tree
  (methods, nested defs) and resolve call sites to candidate callees
  by name, enclosing class, and a small receiver-hint table
  (``resident.free`` resolves to ``ResidentPageTable.free``, not to
  every ``free`` in the tree);
* :class:`Summary` — what one function does to its parameters: the
  protocol state each parameter definitely/possibly reaches by exit
  (``("page", "page:free")`` for a helper that frees its argument),
  which parameters escape into long-lived structures, what the return
  value freshly acquires, whether the function may yield the CPU, and
  whether it propagates transient pager/disk errors to its caller;
* :func:`compute_summaries` — run a per-function ``local`` analysis
  bottom-up over Tarjan SCCs of the call graph, iterating each SCC to
  a fixpoint so recursion (and mutual recursion) converges.

Consumers: :mod:`repro.analysis.typestate` supplies the ``local``
analysis and checks protocol rules with the results;
:mod:`repro.analysis.lifecycle` and :mod:`repro.analysis.errorpaths`
replace their per-function ownership-handoff special cases with
summary lookups at call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

__all__ = [
    "CallGraph", "FunctionInfo", "Summary", "build_callgraph",
    "compute_summaries", "join_summaries", "strongly_connected",
]

#: Receiver names that pin a method call to one class: ``x.resident.free``
#: can only be :class:`ResidentPageTable`'s ``free``.  Keeps common
#: method names from joining the summaries of every class in the tree.
RECEIVER_HINTS = {
    "resident": "ResidentPageTable",
    "objects": "VMObjectManager",
    "physmem": "PhysicalMemory",
    "scheduler": "Scheduler",
    "sched": "Scheduler",
}

#: Method names too generic to resolve by name alone — without a
#: receiver hint or a same-class match, calls to these stay unresolved
#: (conservative: no summary applied) rather than joining dozens of
#: unrelated candidates.
_AMBIENT_NAMES = frozenset({
    "run", "get", "read", "write", "close", "open", "start", "stop",
    "step", "next", "send", "pop", "push", "add", "append", "clear",
    "copy", "items", "keys", "values", "update", "remove",
})


def _attr_chain(expr: ast.AST) -> list[str]:
    """``self.vm.resident.allocate`` -> ["self", "vm", "resident",
    "allocate"]; [] when not a plain name/attribute chain."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return list(reversed(parts))
    return []


@dataclass
class FunctionInfo:
    """One function (or method) in the call graph."""

    fid: str                 # "module:Qual.name" — globally unique
    module: str              # dotted module
    qualname: str            # e.g. "ResidentPageTable.free"
    name: str                # terminal name, e.g. "free"
    cls: Optional[str]       # enclosing class name, None for plain defs
    func: ast.AST            # the FunctionDef / AsyncFunctionDef node
    params: tuple[str, ...]  # positional parameter names (incl. self)

    @property
    def is_method(self) -> bool:
        return self.cls is not None


def _params_of(func: ast.AST) -> tuple[str, ...]:
    args = func.args
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    return tuple(names)


def _class_of(qualname: str, classes: frozenset[str]) -> Optional[str]:
    parts = qualname.split(".")
    if len(parts) >= 2 and parts[-2] in classes:
        return parts[-2]
    return None


class CallGraph:
    """Whole-tree function index + call-site resolution."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self._by_name: dict[str, list[str]] = {}
        self._by_class: dict[tuple[str, str], list[str]] = {}
        self._plain_by_name: dict[str, list[str]] = {}
        self._module_locals: dict[tuple[str, str], list[str]] = {}
        #: fid -> resolved callee fids (the edge set SCCs run over)
        self.edges: dict[str, set[str]] = {}

    # -- construction ------------------------------------------------------

    def _add(self, info: FunctionInfo) -> None:
        self.functions[info.fid] = info
        self._by_name.setdefault(info.name, []).append(info.fid)
        if info.cls is not None:
            self._by_class.setdefault((info.cls, info.name),
                                      []).append(info.fid)
        else:
            self._plain_by_name.setdefault(info.name, []).append(info.fid)
        self._module_locals.setdefault((info.module, info.name),
                                       []).append(info.fid)

    # -- resolution --------------------------------------------------------

    def resolve(self, call: ast.Call,
                caller: FunctionInfo) -> tuple[str, ...]:
        """Candidate callee fids for *call* made inside *caller*.

        Empty when the callee is unknown/external — callers must treat
        that conservatively (no summary effects), never as "no effect
        proven".
        """
        chain = _attr_chain(call.func)
        if not chain:
            return ()
        name = chain[-1]
        if name.startswith("__") and name.endswith("__"):
            return ()
        if len(chain) == 1:
            # Bare-name call: same-module functions first (the common
            # helper case), then plain functions anywhere (imports).
            local = [f for f in self._module_locals.get(
                (caller.module, name), ())]
            if local:
                return tuple(local)
            return tuple(self._plain_by_name.get(name, ()))
        receiver = chain[-2]
        if receiver == "self" and caller.cls is not None:
            own = self._by_class.get((caller.cls, name))
            if own:
                return tuple(own)
        hint = RECEIVER_HINTS.get(receiver)
        if hint is not None:
            return tuple(self._by_class.get((hint, name), ()))
        if name in _AMBIENT_NAMES:
            return ()
        # Unhinted method call: every method with that name.  must-
        # effects intersect across candidates, so breadth only ever
        # weakens conclusions, never fabricates them.
        return tuple(f for f in self._by_name.get(name, ())
                     if self.functions[f].is_method)

    def bind_args(self, fid: str, call: ast.Call,
                  receiver_var: Optional[str]) -> dict[str, str]:
        """Map callee parameter names -> caller variable names for the
        plain-``Name`` arguments of *call* (others stay unbound)."""
        info = self.functions[fid]
        params = info.params
        bound: dict[str, str] = {}
        offset = 0
        if info.is_method and params:
            if receiver_var is not None:
                bound[params[0]] = receiver_var
            offset = 1
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if offset + i < len(params) and isinstance(arg, ast.Name):
                bound[params[offset + i]] = arg.id
        for kw in call.keywords:
            if kw.arg and kw.arg in params \
                    and isinstance(kw.value, ast.Name):
                bound[kw.arg] = kw.value.id
        return bound


def build_callgraph(modules: Iterable[tuple[str, ast.AST]]) -> CallGraph:
    """Index every function under *modules* (``(dotted name, tree)``
    pairs) and resolve each function's call sites to candidate fids."""
    from repro.analysis.cfg import iter_functions

    graph = CallGraph()
    per_module: list[tuple[str, ast.AST]] = list(modules)
    for module, tree in per_module:
        classes = frozenset(n.name for n in ast.walk(tree)
                            if isinstance(n, ast.ClassDef))
        for qualname, func in iter_functions(tree):
            fid = f"{module}:{qualname}"
            graph._add(FunctionInfo(
                fid=fid, module=module, qualname=qualname,
                name=qualname.split(".")[-1],
                cls=_class_of(qualname, classes), func=func,
                params=_params_of(func)))
    for info in graph.functions.values():
        callees: set[str] = set()
        for node in ast.walk(info.func):
            if isinstance(node, ast.Call):
                callees.update(graph.resolve(node, info))
        callees.discard(info.fid)
        graph.edges[info.fid] = callees
    return graph


# -- per-function summaries ------------------------------------------------

@dataclass(frozen=True)
class Summary:
    """Externally visible effects of one function.

    States are namespaced ``"<protocol>:<state>"`` strings from
    :mod:`repro.analysis.typestate` (e.g. ``"page:free"``); parameters
    are named, and call sites bind them back to caller variables with
    :meth:`CallGraph.bind_args`.
    """

    #: (param, state): the parameter reaches *state* on every normal
    #: exit — safe to act on at the call site (e.g. "helper freed it").
    must_exit: tuple[tuple[str, str], ...] = ()
    #: (param, state): reached on at least one exit path — call sites
    #: stop trusting the variable but must not report on it.
    may_exit: tuple[tuple[str, str], ...] = ()
    #: parameters stored into long-lived structures (ownership moved).
    escapes: tuple[str, ...] = ()
    #: ``"<protocol>:<state>"`` freshly acquired into the return value
    #: on every normal return (e.g. an allocate-wrapper).
    returns_acquired: tuple[str, ...] = ()
    #: can this function (transitively) yield the CPU / block?
    may_yield: bool = False
    #: does a transient pager/disk error escape to the caller (a
    #: ``#: no-retry`` site, or an unprotected call to a propagator)?
    propagates_transient: bool = False

    def must_exit_state(self, param: str) -> Optional[str]:
        for name, state in self.must_exit:
            if name == param:
                return state
        return None

    def may_exit_states(self, param: str) -> tuple[str, ...]:
        return tuple(s for name, s in self.may_exit if name == param)


EMPTY_SUMMARY = Summary()


def join_summaries(summaries: Iterable[Summary]) -> Summary:
    """Join candidate summaries at an ambiguous call site: must-facts
    intersect (only what *every* candidate guarantees), may-facts and
    escape/yield/transient bits union."""
    summaries = list(summaries)
    if not summaries:
        return EMPTY_SUMMARY
    if len(summaries) == 1:
        return summaries[0]
    must = set(summaries[0].must_exit)
    returns = set(summaries[0].returns_acquired)
    may: set[tuple[str, str]] = set()
    escapes: set[str] = set()
    may_yield = False
    propagates = False
    for s in summaries:
        must &= set(s.must_exit)
        returns &= set(s.returns_acquired)
        may |= set(s.may_exit)
        escapes |= set(s.escapes)
        may_yield |= s.may_yield
        propagates |= s.propagates_transient
    return Summary(
        must_exit=tuple(sorted(must)), may_exit=tuple(sorted(may)),
        escapes=tuple(sorted(escapes)),
        returns_acquired=tuple(sorted(returns)),
        may_yield=may_yield, propagates_transient=propagates)


# -- SCC condensation + bottom-up fixpoint ---------------------------------

def strongly_connected(edges: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan.  SCCs come out callees-before-callers (reverse
    topological order of the condensation), which is exactly the order
    a bottom-up summary computation wants."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in edges:
        if root in index:
            continue
        work: list[tuple[str, Iterable]] = [(root, iter(sorted(edges[root])))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in edges:
                    continue
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


#: lookup(call, caller) -> [(fid, Summary-so-far), ...] for every
#: resolved candidate; empty when the callee is unknown/external.
SummaryLookup = Callable[[ast.Call, FunctionInfo],
                         list[tuple[str, Summary]]]

#: local(info, lookup) -> Summary for one function, given its callees'
#: summaries so far.
LocalAnalysis = Callable[[FunctionInfo, SummaryLookup], Summary]

#: Fixpoint bound per SCC.  Summaries live in a finite lattice (states
#: per parameter), so real convergence is fast; the bound only guards
#: against a non-monotone local analysis bug.
MAX_SCC_ROUNDS = 25


def compute_summaries(graph: CallGraph,
                      local: LocalAnalysis) -> dict[str, Summary]:
    """Run *local* bottom-up over the condensation; within each SCC,
    iterate to a fixpoint so recursive groups converge."""
    summaries: dict[str, Summary] = {}

    def lookup(call: ast.Call,
               caller: FunctionInfo) -> list[tuple[str, Summary]]:
        return [(f, summaries.get(f, EMPTY_SUMMARY))
                for f in graph.resolve(call, caller)]

    for scc in strongly_connected(graph.edges):
        if len(scc) == 1 and scc[0] not in graph.edges.get(scc[0], ()):
            # Non-recursive function: its callees are final already,
            # one local run is the fixpoint.
            fid = scc[0]
            summaries[fid] = local(graph.functions[fid], lookup)
            continue
        for _round in range(MAX_SCC_ROUNDS):
            changed = False
            for fid in scc:
                new = local(graph.functions[fid], lookup)
                if summaries.get(fid) != new:
                    summaries[fid] = new
                    changed = True
            if not changed:
                break
    return summaries
