"""Error-path completeness: transient errors must meet retry policy.

PR 2's failure taxonomy (:mod:`repro.core.errors`) splits pager/disk
errors into *transient* (``PagerStallError``, ``DiskIOError`` — retry
with backoff) and *fatal* (crash/garbage/timeout — declare the pager
dead).  The kernel's single retry funnel is
``MachKernel._call_pager``; everything transient is supposed to flow
through it.  This pass checks the supposition:

* ``unhandled-transient`` — a call site of an operation that can
  raise a transient error (``data_request``/``data_write``/
  ``data_unlock``, ``read_block``/``write_block``,
  ``read_direct``/``write_direct``) in kernel code must be either

  - inside a lambda handed to ``_call_pager`` (the retry funnel),
  - inside a ``try`` whose handlers can catch the transient types, or
  - explicitly annotated ``#: no-retry <reason>`` on the call's line
    or in the comment block directly above it — the reviewed way to
    say "my caller retries";

* ``bare-except`` — an ``except:`` / ``except Exception`` in kernel
  paths that does **not** re-raise swallows the taxonomy whole (a
  fatal pager crash would be silently ignored); cleanup-then-``raise``
  handlers are fine.

Scope: the kernel-path packages ``core``, ``pager``, ``ipc``, ``fs``.
The fault-injection wrappers (``inject``) *produce* these errors and
are exempt, as are the analysis/bench/CLI layers.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional

from repro.analysis.flow import Finding, iter_source_modules
from repro.analysis.layering import _strip

PASS_NAME = "errorpaths"

#: Part of the incremental-cache key: bump on any behavior change.
PASS_VERSION = "2"

#: Packages whose code counts as kernel paths.
SCOPE = ("core", "pager", "ipc", "fs")

#: Method names that can raise a transient error from the taxonomy.
TRANSIENT_OPS = frozenset({
    "data_request", "data_write", "data_unlock",
    "read_block", "write_block", "read_direct", "write_direct",
})

#: Exception names whose handler counts as catching transient errors.
CATCHERS = frozenset({
    "PagerStallError", "DiskIOError", "PagerError",
    "MemoryObjectError", "VMError", "IPCError",
    "Exception", "BaseException",
})

#: The annotation acknowledging an intentionally unprotected site.
ANNOTATION = "#: no-retry"


def _exc_name(expr: Optional[ast.AST]) -> list[str]:
    if expr is None:
        return ["<bare>"]
    if isinstance(expr, ast.Tuple):
        names: list[str] = []
        for elt in expr.elts:
            names += _exc_name(elt)
        return names
    if isinstance(expr, ast.Name):
        return [expr.id]
    if isinstance(expr, ast.Attribute):
        return [expr.attr]
    return []


def _catches_transient(handler: ast.ExceptHandler) -> bool:
    names = _exc_name(handler.type)
    return "<bare>" in names or any(n in CATCHERS for n in names)


def _reraises(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


def _call_tail(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _takes_thread_context(func: ast.AST) -> bool:
    """True for scheduler thread bodies: a parameter named ``ctx`` or
    annotated ``ThreadContext`` (the same convention the race pass
    uses to find preemption points)."""
    for arg in (list(func.args.posonlyargs) + list(func.args.args)
                + list(func.args.kwonlyargs)):
        ann = arg.annotation
        if arg.arg == "ctx" \
                or (isinstance(ann, ast.Name)
                    and ann.id == "ThreadContext") \
                or (isinstance(ann, ast.Attribute)
                    and ann.attr == "ThreadContext") \
                or (isinstance(ann, ast.Constant)
                    and ann.value == "ThreadContext"):
            return True
    return False


def _annotated(lines: list[str], lineno: int) -> bool:
    """True when the call line, or the contiguous comment block
    directly above it, carries the ``#: no-retry`` annotation."""
    if 1 <= lineno <= len(lines) and ANNOTATION in lines[lineno - 1]:
        return True
    ln = lineno - 1
    while 1 <= ln <= len(lines):
        stripped = lines[ln - 1].strip()
        if not stripped.startswith("#"):
            break
        if ANNOTATION in stripped:
            return True
        ln -= 1
    return False


class _ModuleChecker(ast.NodeVisitor):
    def __init__(self, module: str, source_lines: list[str],
                 ctx=None) -> None:
        self.module = module
        self.lines = source_lines
        self.ctx = ctx            # typestate.AnalysisContext or None
        self.findings: list[Finding] = []
        self._protected = 0       # depth of try-with-catcher / funnel
        self._scope: list[str] = []
        self._thread_body: list[bool] = []

    @property
    def _where(self) -> str:
        return ".".join(self._scope)

    # -- scope bookkeeping -------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope.append(node.name)
        self._thread_body.append(_takes_thread_context(node))
        self.generic_visit(node)
        self._thread_body.pop()
        self._scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    # -- the two rules -----------------------------------------------------

    def visit_Try(self, node: ast.Try) -> None:
        protects = any(_catches_transient(h) for h in node.handlers)
        if protects:
            self._protected += 1
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        if protects:
            self._protected -= 1
        for handler in node.handlers:
            names = _exc_name(handler.type)
            broad = ("<bare>" in names or "Exception" in names
                     or "BaseException" in names)
            if broad and not _reraises(handler.body):
                self.findings.append(Finding(
                    PASS_NAME, self.module, handler.lineno, "bare-except",
                    self._where,
                    "broad except swallows the whole failure taxonomy "
                    "(a fatal PagerCrashedError would vanish here); "
                    "catch the specific transient types, or re-raise "
                    "after cleanup"))
            self.visit(handler)
        for stmt in node.finalbody:
            self.visit(stmt)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        # The handler body is *outside* its own try's protection.
        for stmt in node.body:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        tail = _call_tail(node)
        if tail == "_call_pager":
            # Lambdas handed to the retry funnel are protected.
            self._protected += 1
            self.generic_visit(node)
            self._protected -= 1
            return
        if tail in TRANSIENT_OPS and self._protected == 0 \
                and not _annotated(self.lines, node.lineno):
            self.findings.append(Finding(
                PASS_NAME, self.module, node.lineno,
                "unhandled-transient", self._where,
                f"{tail}() can raise a transient PagerStallError/"
                f"DiskIOError but no retry/backoff handling encloses "
                f"it; route it through _call_pager, catch the "
                f"transient types, or annotate '#: no-retry <reason>' "
                f"if the caller retries"))
        elif tail not in TRANSIENT_OPS and self._protected == 0 \
                and self._thread_body and self._thread_body[-1] \
                and not _annotated(self.lines, node.lineno) \
                and self._callee_propagates(node):
            # The interprocedural half: the callee's summary says a
            # transient can escape it ('#: no-retry' somewhere inside
            # defers retrying to callers).  Propagating further is
            # fine in ordinary kernel code — the syscall boundary
            # surfaces errors to the simulated user like an errno —
            # but a *thread body* is where the scheduler's call chain
            # ends: a transient escaping here kills the thread with
            # nobody left to retry.
            self.findings.append(Finding(
                PASS_NAME, self.module, node.lineno,
                "unhandled-transient-propagated", self._where,
                f"{tail}() lets a transient PagerStallError/"
                f"DiskIOError escape and this is a thread body — the "
                f"end of the scheduler's call chain, so nothing above "
                f"will retry; catch the transient types here or "
                f"route the operation through _call_pager"))
        self.generic_visit(node)

    def _callee_propagates(self, call: ast.Call) -> bool:
        if self.ctx is None:
            return False
        info = self.ctx.caller_info(self.module, self._where)
        if info is None:
            return False
        return any(summary.propagates_transient
                   for _fid, summary in self.ctx.lookup(call, info))


def check_module(module: str, tree: ast.AST,
                 source_lines: list[str], ctx=None) -> list[Finding]:
    """Run the error-path rules over one parsed module.  With a
    :class:`repro.analysis.typestate.AnalysisContext`, calls to
    functions whose summaries propagate transients are checked too."""
    checker = _ModuleChecker(module, source_lines, ctx)
    checker.visit(tree)
    return checker.findings


def in_scope(module: str, package: str = "repro") -> bool:
    """Error paths apply to kernel-path packages only."""
    inner = _strip(module, package)
    return inner is not None and inner.split(".")[0] in SCOPE


def run_pass(root: Optional[Path] = None,
             package: str = "repro") -> list[Finding]:
    """Error-path-check every kernel-path module in the tree."""
    findings: list[Finding] = []
    for module, path, tree in iter_source_modules(root, package):
        if not in_scope(module, package):
            continue
        lines = path.read_text().splitlines()
        findings += check_module(module, tree, lines)
    return findings
