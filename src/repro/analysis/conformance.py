"""MI-contract conformance verifiers: pmaps and pagers.

The paper's portability claim is a contract (Section 3.6, Tables 3-3
and 3-4): a port supplies one pmap module behind the machine-
independent interface, the pmap "may forget, but never lie", and every
mapping mutation must become visible to all TLBs.  This pass makes
that contract checkable *statically*, so the post-1987 pmaps planned
in ROADMAP item 4 (Utopia, VBI, radix) are verified the moment they
call :func:`repro.pmap.registry.register_pmap`.

The pager side (Section 3.3, Tables 3-1 and 3-2) has the same shape
since protocol v2: every pager registered through
:func:`repro.pager.registry.register_pager` is held to the v2 calling
convention (``data_request`` accepts the advisory readahead hint),
its :class:`~repro.pager.protocol.PagerCapabilities` declaration must
be honest (a declared hook must exist), and the live
:class:`~repro.pager.base.ExternalPagerAdapter` is exercised against
the protocol-ordering rules — data arriving before ``pager_init`` is
rejected, and every issued request id is eventually answered or
retired (no in-flight leak), with late echoes drained as stale.

For every registered pmap class the verifier checks:

* **complete method coverage** — the class is concrete (no abstract
  ``_hw_*`` hook left unimplemented) and every Table 3-3/3-4 method is
  callable (rule ``incomplete-interface`` / ``missing-method``);
* **signature compatibility** — overrides accept the interface's
  parameters, by name and position; extra parameters must carry
  defaults so MI call sites never have to know about them (rule
  ``signature-mismatch``);
* **TLB invalidation** — an override of a mutating operation
  (``enter``/``remove``/``protect``/``forget``) must either delegate
  to ``super()`` (whose implementation shoots down) or call
  ``shootdown`` itself; a pmap that mutates silently would *lie*
  (rule ``missing-invalidate``);
* **no reach-around imports** — the defining module must not import
  machine-independent state (``repro.core.*`` beyond the shared
  vocabulary, the pager, or IPC); all VM information a pmap needs
  arrives through the interface (rule ``reach-around-import``).

Unlike the other flow passes this one inspects *live classes* (via the
registry), so conformance follows inheritance exactly the way the
kernel will resolve it at boot.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from pathlib import Path
from typing import Optional, Type

from repro.analysis.flow import Finding

PASS_NAME = "conformance"

#: Part of the incremental-cache key: bump on any behavior change.
PASS_VERSION = "2"

#: Methods every pmap must export (Table 3-3 + 3-4 + simulation hooks).
CONTRACT_METHODS = (
    "reference", "destroy",
    "enter", "enter_batch", "remove", "protect", "extract", "access",
    "activate", "deactivate",
    "copy", "pageable",
    "forget", "hw_lookup", "translate_fault_type",
)

#: The machine-dependent hooks the base class fans out to.
HW_HOOKS = ("_hw_enter", "_hw_remove", "_hw_protect", "_hw_lookup",
            "_hw_iter")

#: Mutating operations that must invalidate TLBs.
MUTATORS = ("enter", "enter_batch", "remove", "protect", "forget")

#: repro.core submodules a pmap module may import: the shared
#: vocabulary only (mirrors the layering lint's VOCABULARY).
ALLOWED_CORE = ("repro.core.constants", "repro.core.errors")

#: MI packages a pmap module must never reach into.
FORBIDDEN_PREFIXES = ("repro.core", "repro.pager", "repro.ipc",
                      "repro.unix", "repro.fs")


def _interface_class() -> type:
    from repro.pmap.interface import Pmap
    return Pmap


def _finding(cls: type, lineno: int, rule: str, message: str,
             where: str = "") -> Finding:
    module = getattr(cls, "__module__", "repro.pmap")
    return Finding(PASS_NAME, module, lineno, rule, where or cls.__name__,
                   message)


def _class_lineno(cls: type) -> int:
    try:
        _, lineno = inspect.getsourcelines(cls)
        return lineno
    except (OSError, TypeError):
        return 0


def _method_lineno(func) -> int:
    code = getattr(func, "__code__", None)
    return getattr(code, "co_firstlineno", 0)


def _check_coverage(name: str, cls: type) -> list[Finding]:
    findings: list[Finding] = []
    abstract = sorted(getattr(cls, "__abstractmethods__", ()))
    if abstract:
        findings.append(_finding(
            cls, _class_lineno(cls), "incomplete-interface",
            f"pmap {name!r} ({cls.__name__}) is abstract: implement "
            f"{', '.join(abstract)} (see the _hw_* hooks in "
            f"repro.pmap.interface.Pmap)"))
    for method in CONTRACT_METHODS + HW_HOOKS:
        if not callable(getattr(cls, method, None)):
            findings.append(_finding(
                cls, _class_lineno(cls), "missing-method",
                f"pmap {name!r} ({cls.__name__}) does not provide "
                f"{method}(); every registered pmap must export the "
                f"full Table 3-3/3-4 interface"))
    return findings


def _check_signatures(name: str, cls: type, base: type) -> list[Finding]:
    findings: list[Finding] = []
    for method in CONTRACT_METHODS + HW_HOOKS:
        impl = getattr(cls, method, None)
        ref = getattr(base, method, None)
        if impl is None or ref is None or impl is ref:
            continue
        try:
            want = list(inspect.signature(ref).parameters.values())
            have = list(inspect.signature(impl).parameters.values())
        except (ValueError, TypeError):      # C-level / exotic callables
            continue
        if any(p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD) for p in have):
            continue                         # *args/**kwargs accepts all
        problems: list[str] = []
        for idx, wp in enumerate(want):
            if idx >= len(have):
                problems.append(f"missing parameter {wp.name!r}")
                continue
            if have[idx].name != wp.name:
                problems.append(
                    f"parameter {idx} is {have[idx].name!r}, interface "
                    f"says {wp.name!r}")
        for extra in have[len(want):]:
            if extra.default is extra.empty:
                problems.append(
                    f"extra parameter {extra.name!r} has no default — "
                    f"MI call sites cannot supply it")
        if problems:
            findings.append(_finding(
                cls, _method_lineno(impl), "signature-mismatch",
                f"pmap {name!r}: {cls.__name__}.{method}"
                f"{inspect.signature(impl)} does not match the "
                f"interface {base.__name__}.{method}"
                f"{inspect.signature(ref)}: " + "; ".join(problems),
                where=f"{cls.__name__}.{method}"))
    return findings


def _method_ast(func) -> Optional[ast.FunctionDef]:
    try:
        source = textwrap.dedent(inspect.getsource(func))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def _invalidates(func_ast: ast.AST, method: str) -> bool:
    """Does the method body call super().<method>(...) (which shoots
    down) or a .shootdown(...) itself?"""
    for node in ast.walk(func_ast):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "shootdown":
                return True
            if func.attr == method and isinstance(func.value, ast.Call) \
                    and isinstance(func.value.func, ast.Name) \
                    and func.value.func.id == "super":
                return True
    return False


def _check_invalidation(name: str, cls: type, base: type) -> list[Finding]:
    findings: list[Finding] = []
    for method in MUTATORS:
        impl = getattr(cls, method, None)
        ref = getattr(base, method, None)
        if impl is None or ref is None or impl is ref:
            continue
        func_ast = _method_ast(impl)
        if func_ast is None:      # no source (REPL / exec); cannot judge
            continue
        if not _invalidates(func_ast, method):
            findings.append(_finding(
                cls, _method_lineno(impl), "missing-invalidate",
                f"pmap {name!r}: {cls.__name__}.{method}() mutates "
                f"mappings without delegating to super().{method}() or "
                f"calling shootdown(); stale TLB entries would survive "
                f"on other CPUs — the pmap may forget, but never lie",
                where=f"{cls.__name__}.{method}"))
    return findings


def _module_imports(module_name: str) -> list[tuple[str, int]]:
    import importlib.util
    spec = importlib.util.find_spec(module_name)
    if spec is None or spec.origin is None:
        return []
    try:
        tree = ast.parse(Path(spec.origin).read_text())
    except (OSError, SyntaxError):
        return []
    out: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out += [(alias.name, node.lineno) for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                out.append((f"{node.module}.{alias.name}", node.lineno))
                out.append((node.module, node.lineno))
    return out


def _check_imports(name: str, cls: type, base: type) -> list[Finding]:
    # Only the class's own defining module: base classes are verified
    # when their own registration is checked, avoiding duplicates.
    del base
    findings: list[Finding] = []
    module_name = getattr(cls, "__module__", "")
    if not module_name:
        return findings
    seen: set[str] = set()
    for imported, lineno in _module_imports(module_name):
        bad = any(imported == p or imported.startswith(p + ".")
                  for p in FORBIDDEN_PREFIXES)
        ok = any(imported == a or a.startswith(imported + ".")
                 or imported.startswith(a + ".")
                 for a in ALLOWED_CORE)
        if bad and not ok and imported not in seen:
            seen.add(imported)
            findings.append(Finding(
                PASS_NAME, module_name, lineno, "reach-around-import",
                cls.__name__,
                f"pmap module imports MI state {imported!r}; the "
                f"machine-dependent layer may only use the shared "
                f"vocabulary ({', '.join(ALLOWED_CORE)}) — all VM "
                f"information must arrive through the pmap interface"))
    return findings


def verify_pmap_class(name: str, cls: Type) -> list[Finding]:
    """Check one pmap class against the MI contract; returns findings
    (empty when conformant)."""
    base = _interface_class()
    if not (isinstance(cls, type) and issubclass(cls, base)):
        return [Finding(
            PASS_NAME, getattr(cls, "__module__", "?"), 0,
            "not-a-pmap", getattr(cls, "__name__", repr(cls)),
            f"registered pmap {name!r} is not a Pmap subclass")]
    findings = _check_coverage(name, cls)
    findings += _check_signatures(name, cls, base)
    findings += _check_invalidation(name, cls, base)
    findings += _check_imports(name, cls, base)
    return findings


def verify_pmap_conformance(registry: Optional[dict] = None
                            ) -> list[Finding]:
    """Check every registered pmap (the live registry by default)."""
    if registry is None:
        from repro.pmap.registry import registered_pmaps
        registry = registered_pmaps()
    findings: list[Finding] = []
    for name in sorted(registry):
        findings += verify_pmap_class(name, registry[name])
    return findings


# ---------------------------------------------------------------------------
# The pager side: Table 3-1/3-2 protocol v2 conformance
# ---------------------------------------------------------------------------

#: Methods every pager must export (the v2 calling convention).
PAGER_CONTRACT_METHODS = ("data_request", "data_write", "name")

#: Capability flag -> the optional hook it promises.  A pager whose
#: declared capabilities name a hook it does not implement *lies*, the
#: pager-side equivalent of a pmap mutating without a shootdown.
PAGER_CAPABILITY_METHODS = {
    "has_data": "has_data",
    "has_slot": "has_slot",
    "move_slots": "move_slots",
    "release_object": "release_object",
    "lock_value_for": "lock_value_for",
    "data_unlock": "data_unlock",
    "pager_init": "pager_init",
}

#: data_request parameters after ``self`` under protocol v2; the fifth
#: (the readahead hint) must be optional so 4-argument call sites —
#: the reference kernel's v1 shim included — keep working.
_V2_REQUEST_ARITY = 5


def _pager_interface_class() -> type:
    from repro.pager.protocol import PagerProtocol
    return PagerProtocol


def _check_pager_signature(name: str, cls: type) -> list[Finding]:
    impl = getattr(cls, "data_request", None)
    if impl is None:
        return []
    try:
        params = list(inspect.signature(impl).parameters.values())
    except (ValueError, TypeError):
        return []
    if params and params[0].name == "self":
        params = params[1:]
    if any(p.kind is p.VAR_POSITIONAL for p in params):
        return []
    problems: list[str] = []
    if len(params) < _V2_REQUEST_ARITY:
        problems.append(
            f"takes {len(params)} parameters, protocol v2 takes "
            f"{_V2_REQUEST_ARITY} (obj, offset, length, desired_access, "
            f"readahead_hint=0)")
    else:
        hint = params[_V2_REQUEST_ARITY - 1]
        if hint.default is hint.empty:
            problems.append(
                f"readahead parameter {hint.name!r} has no default — "
                f"v1 call sites (four arguments) could not call it")
    if not problems:
        return []
    return [_finding(
        cls, _method_lineno(impl), "v1-signature",
        f"pager {name!r}: {cls.__name__}.data_request"
        f"{inspect.signature(impl)} is not protocol v2: "
        + "; ".join(problems),
        where=f"{cls.__name__}.data_request")]


def _check_pager_capabilities(name: str, cls: type) -> list[Finding]:
    from repro.pager.protocol import PagerCapabilities
    caps = getattr(cls, "capabilities", None)
    if not isinstance(caps, PagerCapabilities):
        # Instance-level declaration (e.g. a transfer_size known only
        # at construction): nothing class-level to hold honest.
        return []
    findings: list[Finding] = []
    for flag, method in sorted(PAGER_CAPABILITY_METHODS.items()):
        if getattr(caps, flag) and not callable(getattr(cls, method,
                                                        None)):
            findings.append(_finding(
                cls, _class_lineno(cls), "phantom-capability",
                f"pager {name!r} ({cls.__name__}) declares capability "
                f"{flag!r} but provides no {method}() — capabilities "
                f"are promises the kernel dispatches on, not hints",
                where=f"{cls.__name__}.{method}"))
    return findings


def verify_pager_class(name: str, cls: Type) -> list[Finding]:
    """Check one registered pager class against the protocol-v2
    contract; returns findings (empty when conformant)."""
    base = _pager_interface_class()
    if not (isinstance(cls, type) and issubclass(cls, base)):
        return [Finding(
            PASS_NAME, getattr(cls, "__module__", "?"), 0,
            "not-a-pager", getattr(cls, "__name__", repr(cls)),
            f"registered pager {name!r} is not a PagerProtocol "
            f"subclass")]
    findings: list[Finding] = []
    abstract = sorted(getattr(cls, "__abstractmethods__", ()))
    if abstract:
        findings.append(_finding(
            cls, _class_lineno(cls), "incomplete-interface",
            f"pager {name!r} ({cls.__name__}) is abstract: implement "
            f"{', '.join(abstract)}"))
    for method in PAGER_CONTRACT_METHODS:
        if not callable(getattr(cls, method, None)):
            findings.append(_finding(
                cls, _class_lineno(cls), "missing-method",
                f"pager {name!r} ({cls.__name__}) does not provide "
                f"{method}()"))
    findings += _check_pager_signature(name, cls)
    findings += _check_pager_capabilities(name, cls)
    return findings


class _ProbeObject:
    """Stand-in memory object for the live adapter ordering checks."""

    def __init__(self, object_id: int) -> None:
        self.object_id = object_id
        self.can_persist = False


def _check_adapter_ordering() -> list[Finding]:
    """Exercise a live ExternalPagerAdapter against the protocol
    ordering rules nothing static can see: reply-before-init rejection
    and every-request-eventually-answered (issued ids never leak;
    retired ids drain late echoes as stale)."""
    from repro.core.errors import PagerTimeoutError
    from repro.pager.base import ExternalPager, ExternalPagerAdapter

    def finding(rule: str, message: str) -> Finding:
        return Finding(PASS_NAME, ExternalPagerAdapter.__module__,
                       _class_lineno(ExternalPagerAdapter), rule,
                       "ExternalPagerAdapter", message)

    findings: list[Finding] = []

    class _Mute(ExternalPager):
        def pager_data_request(self, kernel_if, paging_object, offset,
                               length, desired_access) -> None:
            pass

    class _Echo(ExternalPager):
        def pager_data_request(self, kernel_if, paging_object, offset,
                               length, desired_access) -> None:
            kernel_if.pager_data_provided(offset, b"\0" * length)

    # (1) Reply before any pager_init: must be rejected, not buffered.
    adapter = ExternalPagerAdapter(_Mute())
    adapter.kernel_if.pager_data_provided(0, b"\0" * 16, request_id=0)
    adapter._pump()
    if adapter.rejected_before_init == 0 or adapter._provided:
        findings.append(finding(
            "reply-order",
            "adapter accepted pager_data_provided before pager_init "
            "bound any object; data must not be installable for an "
            "uninitialized memory object"))

    # (2) An answered request retires its id and leaves nothing in
    # flight.
    adapter = ExternalPagerAdapter(_Echo())
    obj = _ProbeObject(1)
    adapter.pager_init(obj)
    page = adapter._page_size()
    adapter.data_request(obj, 0, page, 1)
    if adapter._inflight or not adapter._retired:
        findings.append(finding(
            "request-leak",
            f"after an answered data_request the adapter still tracks "
            f"{len(adapter._inflight)} in-flight id(s) "
            f"({len(adapter._retired)} retired); every request must "
            f"eventually be answered and retired"))

    # (3) An unanswered request times out, retires its id, and a late
    # echo of that id is drained as stale rather than installed.
    adapter = ExternalPagerAdapter(_Mute())
    obj = _ProbeObject(2)
    adapter.pager_init(obj)
    try:
        adapter.data_request(obj, 0, page, 1)
    except PagerTimeoutError:
        pass
    else:
        findings.append(finding(
            "request-leak",
            "a pager that never answers must surface PagerTimeoutError "
            "(the every-request-eventually-answered guarantee), not "
            "return silently"))
    if adapter._inflight:
        findings.append(finding(
            "request-leak",
            "a timed-out data_request left its id in flight; timeouts "
            "must retire the id so late replies drain as stale"))
    late = sorted(adapter._retired)
    if late:
        adapter.kernel_if.pager_data_provided(0, b"\0" * page,
                                              request_id=late[-1])
        adapter._pump()
        if adapter.stale_replies == 0 or adapter._provided:
            findings.append(finding(
                "reply-order",
                "a reply echoing a retired request id was installed; "
                "retired ids must drain as stale replies"))
    return findings


def verify_pager_conformance(registry: Optional[dict] = None
                             ) -> list[Finding]:
    """Check every registered pager (the live registry by default),
    plus the live adapter ordering probes."""
    if registry is None:
        from repro.pager.registry import registered_pagers
        registry = registered_pagers()
    findings: list[Finding] = []
    for name in sorted(registry):
        findings += verify_pager_class(name, registry[name])
    findings += _check_adapter_ordering()
    return findings


def run_pass(root: Optional[Path] = None,
             package: str = "repro") -> list[Finding]:
    """Flow-pass entry point.  Conformance follows the *live*
    registries (inheritance resolved exactly as the kernel will at
    boot), so the source-tree arguments are unused."""
    del root, package
    return verify_pmap_conformance() + verify_pager_conformance()
