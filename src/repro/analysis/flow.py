"""Dataflow pass framework: findings, solver, baseline, runner.

This is the shared machinery behind the four flow passes
(:mod:`~repro.analysis.lifecycle`, :mod:`~repro.analysis.conformance`,
:mod:`~repro.analysis.errorpaths`, :mod:`~repro.analysis.determinism`):

* :class:`Finding` — one diagnosed problem, printable in the same
  ``module:line: [rule] message`` shape as the layering lint's
  :class:`~repro.analysis.layering.LintViolation`;
* :class:`AnalysisError` — a pass that *crashed* rather than found;
  ``repro check`` treats these as failures, never as a clean run;
* :func:`solve_forward` — a generic forward worklist solver over the
  CFGs built by :mod:`repro.analysis.cfg`;
* a reviewed-suppression **baseline** (``flow_baseline.txt`` next to
  this module): triaged false positives are recorded there with a
  reason instead of silencing the rule globally;
* :func:`run_flow_passes` — run every registered pass over the source
  tree, apply the baseline, and collect findings/errors/suppressions
  into a :class:`FlowReport`.
"""

from __future__ import annotations

import ast
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.analysis.cfg import CFG, ENTRY, CFGNode
from repro.analysis.layering import _module_name


@dataclass(frozen=True)
class Finding:
    """One problem diagnosed by a flow pass."""

    pass_name: str      # "lifecycle", "conformance", ...
    module: str         # dotted module, e.g. "repro.pager.swap"
    lineno: int
    rule: str           # e.g. "leak-on-exception-path"
    where: str          # function qualname (or class name), "" if n/a
    message: str

    def __str__(self) -> str:
        loc = f" in {self.where}" if self.where else ""
        return (f"{self.module}:{self.lineno}: [{self.pass_name}/"
                f"{self.rule}] {self.message}{loc}")


@dataclass(frozen=True)
class AnalysisError:
    """A pass that crashed.  Reported, never swallowed."""

    pass_name: str
    message: str

    def __str__(self) -> str:
        return f"analysis error: pass {self.pass_name!r} crashed: " \
               f"{self.message}"


@dataclass
class FlowReport:
    """Everything one ``repro check`` analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[AnalysisError] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def lines(self) -> list[str]:
        out = [str(f) for f in self.findings]
        out += [str(e) for e in self.errors]
        return out


# -- generic forward worklist solver -------------------------------------

#: transfer(node, state) -> (normal-out state, exceptional-out state)
Transfer = Callable[[CFGNode, object], tuple[object, object]]
#: join(a, b) -> merged state
Join = Callable[[object, object], object]


def solve_forward(cfg: CFG, init: object, transfer: Transfer,
                  join: Join, max_iter: int = 10000) -> dict[int, object]:
    """Run *transfer* to a fixpoint over *cfg*; returns the map of
    node id -> state *entering* that node (synthetic EXIT/EXC_EXIT
    included, holding the states that reach them)."""
    in_states: dict[int, object] = {ENTRY: init}
    work = deque([ENTRY])
    iters = 0
    while work:
        iters += 1
        if iters > max_iter:        # belt and braces; lattices are finite
            raise RuntimeError(f"dataflow did not converge in {max_iter} "
                               f"iterations")
        nid = work.popleft()
        node = cfg.nodes.get(nid)
        if node is None:
            continue
        out_n, out_e = transfer(node, in_states[nid])
        for succ, out in [(s, out_n) for s in node.succ] + \
                         [(s, out_e) for s in node.exc]:
            if succ in in_states:
                merged = join(in_states[succ], out)
                if merged == in_states[succ]:
                    continue
                in_states[succ] = merged
            else:
                in_states[succ] = out
            if succ in cfg.nodes:
                work.append(succ)
    return in_states


# -- source-tree walking --------------------------------------------------

def _source_root(root: Optional[Path]) -> Path:
    if root is not None:
        return Path(root)
    import repro
    return Path(repro.__file__).resolve().parent


def iter_source_modules(root: Optional[Path] = None,
                        package: str = "repro"
                        ) -> Iterable[tuple[str, Path, ast.AST]]:
    """Yield ``(dotted module, path, parsed AST)`` for every source
    file under *root* (the installed ``repro`` package by default)."""
    base = _source_root(root)
    for path in sorted(base.rglob("*.py")):
        module = _module_name(base, path, package)
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:     # pragma: no cover - tree is valid
            raise RuntimeError(f"cannot parse {path}: {exc}") from exc
        yield module, path, tree


# -- baseline (reviewed suppressions) ------------------------------------

BASELINE_FILE = Path(__file__).with_name("flow_baseline.txt")


@dataclass(frozen=True)
class BaselineEntry:
    """One reviewed suppression: ``rule | module | where | reason``."""

    rule: str
    module: str
    where: str        # function qualname, or "*" for the whole module
    reason: str

    def matches(self, finding: Finding) -> bool:
        return (self.rule == f"{finding.pass_name}/{finding.rule}"
                and self.module == finding.module
                and (self.where == "*" or self.where == finding.where))


def load_baseline(path: Optional[Path] = None) -> list[BaselineEntry]:
    """Parse the reviewed-suppression baseline file."""
    path = path or BASELINE_FILE
    entries: list[BaselineEntry] = []
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 4:
            raise ValueError(f"malformed baseline line: {raw!r} "
                             f"(want 'rule | module | where | reason')")
        entries.append(BaselineEntry(*parts))
    return entries


def apply_baseline(findings: Iterable[Finding],
                   baseline: Iterable[BaselineEntry]
                   ) -> tuple[list[Finding], list[tuple[Finding, str]]]:
    """Split *findings* into (kept, suppressed-with-reason)."""
    baseline = list(baseline)
    kept: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    for finding in findings:
        for entry in baseline:
            if entry.matches(finding):
                suppressed.append((finding, entry.reason))
                break
        else:
            kept.append(finding)
    return kept, suppressed


# -- pass registry + runner ----------------------------------------------

#: A pass takes (root, package) and returns findings.
FlowPass = Callable[[Optional[Path], str], list[Finding]]


def _registered_passes() -> dict[str, FlowPass]:
    # Imported lazily so a crash importing one pass is reported as an
    # AnalysisError for that pass, not an ImportError killing check.
    from repro.analysis import conformance, determinism, errorpaths
    from repro.analysis import lifecycle
    return {
        "lifecycle": lifecycle.run_pass,
        "conformance": conformance.run_pass,
        "errorpaths": errorpaths.run_pass,
        "determinism": determinism.run_pass,
    }


FLOW_PASS_NAMES = ("lifecycle", "conformance", "errorpaths",
                   "determinism")


def run_flow_passes(root: Optional[Path] = None, package: str = "repro",
                    passes: Optional[Iterable[str]] = None,
                    baseline: Optional[Path] = None) -> FlowReport:
    """Run the flow passes over the source tree and apply the baseline.

    A pass that raises is recorded as an :class:`AnalysisError` — the
    report is then *not* clean, which is what ``repro check``'s exit
    code keys off.  Findings matching a reviewed baseline entry are
    moved to ``report.suppressed`` with the recorded reason.
    """
    report = FlowReport()
    try:
        registry = _registered_passes()
        entries = load_baseline(baseline)
    except Exception as exc:
        report.errors.append(AnalysisError(
            "flow", f"{type(exc).__name__}: {exc}"))
        return report
    names = tuple(passes) if passes is not None else FLOW_PASS_NAMES
    for name in names:
        run = registry.get(name)
        if run is None:
            report.errors.append(AnalysisError(
                name, f"unknown pass (known: {sorted(registry)})"))
            continue
        try:
            found = run(root, package)
        except Exception as exc:
            tb = traceback.format_exception_only(type(exc), exc)[-1].strip()
            report.errors.append(AnalysisError(name, tb))
            continue
        kept, suppressed = apply_baseline(found, entries)
        report.findings.extend(kept)
        report.suppressed.extend(suppressed)
    report.findings.sort(key=lambda f: (f.module, f.lineno, f.rule))
    return report
