"""Dataflow pass framework: findings, solver, baseline, runner.

This is the shared machinery behind the five flow passes
(:mod:`~repro.analysis.lifecycle`, :mod:`~repro.analysis.conformance`,
:mod:`~repro.analysis.errorpaths`, :mod:`~repro.analysis.determinism`,
:mod:`~repro.analysis.typestate`):

* :class:`Finding` — one diagnosed problem, printable in the same
  ``module:line: [rule] message`` shape as the layering lint's
  :class:`~repro.analysis.layering.LintViolation`;
* :class:`AnalysisError` — a pass that *crashed* rather than found;
  ``repro check`` treats these as failures, never as a clean run;
* :func:`solve_forward` — a generic forward worklist solver over the
  CFGs built by :mod:`repro.analysis.cfg`;
* a reviewed-suppression **baseline** (``flow_baseline.txt`` next to
  this module): triaged false positives are recorded there with a
  reason instead of silencing the rule globally;
* :func:`run_flow_passes` — run every registered pass over the source
  tree, apply the baseline, and collect findings/errors/suppressions
  into a :class:`FlowReport`.
"""

from __future__ import annotations

import ast
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.analysis.cfg import CFG, ENTRY, CFGNode
from repro.analysis.layering import _module_name


@dataclass(frozen=True)
class Finding:
    """One problem diagnosed by a flow pass."""

    pass_name: str      # "lifecycle", "conformance", ...
    module: str         # dotted module, e.g. "repro.pager.swap"
    lineno: int
    rule: str           # e.g. "leak-on-exception-path"
    where: str          # function qualname (or class name), "" if n/a
    message: str

    def __str__(self) -> str:
        loc = f" in {self.where}" if self.where else ""
        return (f"{self.module}:{self.lineno}: [{self.pass_name}/"
                f"{self.rule}] {self.message}{loc}")


@dataclass(frozen=True)
class AnalysisError:
    """A pass that crashed.  Reported, never swallowed."""

    pass_name: str
    message: str

    def __str__(self) -> str:
        return f"analysis error: pass {self.pass_name!r} crashed: " \
               f"{self.message}"


@dataclass
class FlowReport:
    """Everything one ``repro check`` analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[AnalysisError] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    #: Module names actually analyzed this run ("#conformance" stands
    #: for the whole-tree conformance pass).
    analyzed: list[str] = field(default_factory=list)
    #: Module names served from the incremental cache.
    cached: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def lines(self) -> list[str]:
        out = [str(f) for f in self.findings]
        out += [str(e) for e in self.errors]
        return out


# -- generic forward worklist solver -------------------------------------

#: transfer(node, state) -> (normal-out state, exceptional-out state)
Transfer = Callable[[CFGNode, object], tuple[object, object]]
#: join(a, b) -> merged state
Join = Callable[[object, object], object]


def solve_forward(cfg: CFG, init: object, transfer: Transfer,
                  join: Join, max_iter: int = 10000) -> dict[int, object]:
    """Run *transfer* to a fixpoint over *cfg*; returns the map of
    node id -> state *entering* that node (synthetic EXIT/EXC_EXIT
    included, holding the states that reach them)."""
    in_states: dict[int, object] = {ENTRY: init}
    work = deque([ENTRY])
    iters = 0
    while work:
        iters += 1
        if iters > max_iter:        # belt and braces; lattices are finite
            raise RuntimeError(f"dataflow did not converge in {max_iter} "
                               f"iterations")
        nid = work.popleft()
        node = cfg.nodes.get(nid)
        if node is None:
            continue
        out_n, out_e = transfer(node, in_states[nid])
        for succ, out in [(s, out_n) for s in node.succ] + \
                         [(s, out_e) for s in node.exc]:
            if succ in in_states:
                merged = join(in_states[succ], out)
                if merged == in_states[succ]:
                    continue
                in_states[succ] = merged
            else:
                in_states[succ] = out
            if succ in cfg.nodes:
                work.append(succ)
    return in_states


# -- source-tree walking --------------------------------------------------

def _source_root(root: Optional[Path]) -> Path:
    if root is not None:
        return Path(root)
    import repro
    return Path(repro.__file__).resolve().parent


def iter_source_modules(root: Optional[Path] = None,
                        package: str = "repro"
                        ) -> Iterable[tuple[str, Path, ast.AST]]:
    """Yield ``(dotted module, path, parsed AST)`` for every source
    file under *root* (the installed ``repro`` package by default)."""
    base = _source_root(root)
    for path in sorted(base.rglob("*.py")):
        module = _module_name(base, path, package)
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:     # pragma: no cover - tree is valid
            raise RuntimeError(f"cannot parse {path}: {exc}") from exc
        yield module, path, tree


# -- baseline (reviewed suppressions) ------------------------------------

BASELINE_FILE = Path(__file__).with_name("flow_baseline.txt")


@dataclass(frozen=True)
class BaselineEntry:
    """One reviewed suppression: ``rule | module | where | reason``."""

    rule: str
    module: str
    where: str        # function qualname, or "*" for the whole module
    reason: str
    lineno: int = 0   # line in the baseline file (0 = synthesized)

    def matches(self, finding: Finding) -> bool:
        return (self.rule == f"{finding.pass_name}/{finding.rule}"
                and self.module == finding.module
                and (self.where == "*" or self.where == finding.where))


def load_baseline(path: Optional[Path] = None) -> list[BaselineEntry]:
    """Parse the reviewed-suppression baseline file."""
    path = path or BASELINE_FILE
    entries: list[BaselineEntry] = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 4:
            raise ValueError(f"malformed baseline line: {raw!r} "
                             f"(want 'rule | module | where | reason')")
        entries.append(BaselineEntry(*parts, lineno=lineno))
    return entries


def apply_baseline(findings: Iterable[Finding],
                   baseline: Iterable[BaselineEntry]
                   ) -> tuple[list[Finding], list[tuple[Finding, str]]]:
    """Split *findings* into (kept, suppressed-with-reason)."""
    baseline = list(baseline)
    kept: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    for finding in findings:
        for entry in baseline:
            if entry.matches(finding):
                suppressed.append((finding, entry.reason))
                break
        else:
            kept.append(finding)
    return kept, suppressed


# -- pass registry + runner ----------------------------------------------

#: A pass takes (root, package) and returns findings.
FlowPass = Callable[[Optional[Path], str], list[Finding]]


@dataclass(frozen=True)
class _ModulePass:
    """One per-module pass: cache-key version, scope, and runner
    (``run(module, tree, lines, ctx) -> findings``)."""

    version: str
    in_scope: Callable[[str, str], bool]
    run: Callable[[str, ast.AST, list, object], list[Finding]]


def _module_pass_registry() -> dict[str, _ModulePass]:
    # Imported lazily so a crash importing one pass is reported as an
    # AnalysisError for that pass, not an ImportError killing check.
    from repro.analysis import determinism, errorpaths, lifecycle
    from repro.analysis import typestate
    return {
        "lifecycle": _ModulePass(
            lifecycle.PASS_VERSION, lifecycle.in_scope,
            lambda module, tree, lines, ctx:
                lifecycle.check_module(module, tree, ctx)),
        "errorpaths": _ModulePass(
            errorpaths.PASS_VERSION, errorpaths.in_scope,
            lambda module, tree, lines, ctx:
                errorpaths.check_module(module, tree, lines, ctx)),
        "determinism": _ModulePass(
            determinism.PASS_VERSION, determinism.in_scope,
            lambda module, tree, lines, ctx:
                determinism.check_module(module, tree)),
        "typestate": _ModulePass(
            typestate.PASS_VERSION, typestate.in_scope,
            lambda module, tree, lines, ctx:
                typestate.check_module(module, tree, ctx)),
    }


FLOW_PASS_NAMES = ("lifecycle", "conformance", "errorpaths",
                   "determinism", "typestate")

#: Pseudo-module name for the whole-tree conformance result.
CONFORMANCE_KEY = "#conformance"


def _finding_dicts(findings: Iterable[Finding]) -> list[dict]:
    return [{"pass_name": f.pass_name, "module": f.module,
             "lineno": f.lineno, "rule": f.rule, "where": f.where,
             "message": f.message} for f in findings]


def _findings_from(dicts: Iterable[dict]) -> list[Finding]:
    return [Finding(**d) for d in dicts]


def _analyze_module(module: str, tree: ast.AST, lines: list,
                    names: tuple, registry: dict, ctx: object,
                    package: str) -> tuple[dict, list]:
    """Run every in-scope requested pass over one module.  Returns
    (per-pass finding dicts, error strings); a pass that crashed is
    an error string and its result is never cached."""
    by_pass: dict[str, list[dict]] = {}
    errors: list[tuple[str, str]] = []
    for name in names:
        mp = registry[name]
        if not mp.in_scope(module, package):
            continue
        try:
            found = mp.run(module, tree, lines, ctx)
        except Exception as exc:
            tb = traceback.format_exception_only(type(exc),
                                                 exc)[-1].strip()
            errors.append((name, f"{module}: {tb}"))
            continue
        by_pass[name] = _finding_dicts(found)
    return by_pass, errors


#: Pre-fork state for the --jobs pool (fork inherits it copy-on-write;
#: only the module name and the result dicts cross the pipe).
_POOL_STATE: Optional[tuple] = None


def _pool_analyze(module: str) -> tuple[str, dict, list]:
    names, registry, ctx, data, package = _POOL_STATE
    tree, lines = data[module]
    by_pass, errors = _analyze_module(module, tree, lines, names,
                                      registry, ctx, package)
    return module, by_pass, errors


def _run_conformance() -> list[Finding]:
    from repro.analysis import conformance
    return conformance.run_pass()


def _tree_fast_path(cache, digest: str, names: tuple,
                    modules: list) -> Optional[tuple[dict, list]]:
    """Serve the whole run from cache when the tree digest matches:
    no parsing, no call graph, no summaries.  Returns (raw findings
    by source, cached names) or None when anything is missing."""
    tree_payload = cache.load_tree(digest)
    if tree_payload is None:
        return None
    covered = set(tree_payload.get("passes", ()))
    if not covered >= set(names):
        return None
    raw: dict[str, list[Finding]] = {}
    cached: list[str] = []
    for module in modules:
        payload = cache.load_module_unchecked(module)
        if payload is None:
            return None
        found: list[Finding] = []
        for name in names:
            found += _findings_from(payload.get("passes", {})
                                    .get(name, ()))
        raw[module] = found
        cached.append(module)
    if "conformance" in names:
        raw[CONFORMANCE_KEY] = _findings_from(
            tree_payload.get("conformance", ()))
        cached.append(CONFORMANCE_KEY)
    return raw, cached


def run_flow_passes(root: Optional[Path] = None, package: str = "repro",
                    passes: Optional[Iterable[str]] = None,
                    baseline: Optional[Path] = None,
                    cache_dir: Optional[Path] = None,
                    jobs: Optional[int] = None) -> FlowReport:
    """Run the flow passes over the source tree and apply the baseline.

    A pass that raises is recorded as an :class:`AnalysisError` — the
    report is then *not* clean, which is what ``repro check``'s exit
    code keys off.  Findings matching a reviewed baseline entry are
    moved to ``report.suppressed`` with the recorded reason.

    With *cache_dir*, results are served incrementally from an
    :class:`repro.analysis.cache.AnalysisCache`: an unchanged tree is
    a zero-analysis run, and a changed module re-analyzes only itself
    plus the modules whose summary dependencies it reaches (see the
    cache module docs).  ``report.analyzed`` / ``report.cached`` say
    which modules went which way.  *jobs* fans cold modules out over a
    fork pool (the sweeps idiom); cached values are raw findings, so
    the baseline always applies fresh.
    """
    global _POOL_STATE
    report = FlowReport()
    names = tuple(passes) if passes is not None else FLOW_PASS_NAMES
    try:
        registry = _module_pass_registry()
        entries = load_baseline(baseline)
    except Exception as exc:
        report.errors.append(AnalysisError(
            "flow", f"{type(exc).__name__}: {exc}"))
        return report
    module_names = tuple(n for n in names if n in registry)
    for name in names:
        if name not in registry and name != "conformance":
            report.errors.append(AnalysisError(
                name, f"unknown pass (known: "
                      f"{sorted(registry) + ['conformance']})"))

    try:
        modules = list(iter_source_modules(root, package))
        sources = {m: path.read_text() for m, path, _tree in modules}
    except Exception as exc:
        report.errors.append(AnalysisError(
            "flow", f"{type(exc).__name__}: {exc}"))
        return report

    versions = {n: mp.version for n, mp in registry.items()}
    if "conformance" in names:
        from repro.analysis import conformance
        versions["conformance"] = conformance.PASS_VERSION

    cache = None
    digest = ""
    if cache_dir is not None:
        from repro.analysis.cache import AnalysisCache, tree_digest
        cache = AnalysisCache(cache_dir)
        digest = tree_digest(sources, versions)
        served = _tree_fast_path(cache, digest, names,
                                 [m for m, _p, _t in modules])
        if served is not None:
            raw_by_source, report.cached = served
            _finish_report(report, raw_by_source, entries)
            return report

    # Cold or partially-warm: build the interprocedural context (call
    # graph + summaries) — also the source of cache dependency edges.
    try:
        from repro.analysis import typestate
        ctx = typestate.build_context(
            (m, tree, sources[m].splitlines())
            for m, _path, tree in modules)
    except Exception as exc:
        tb = traceback.format_exception_only(type(exc), exc)[-1].strip()
        report.errors.append(AnalysisError("callgraph", tb))
        return report

    keys: dict[str, str] = {}
    if cache is not None:
        from repro.analysis.cache import module_key
        own = {m: ctx.summary_digest(m) for m, _p, _t in modules}
        mod_versions = {n: registry[n].version for n in registry}
        for m, _path, _tree in modules:
            deps = {d: own[d] for d in ctx.dependencies(m) if d in own}
            keys[m] = module_key(sources[m], mod_versions, own[m], deps)

    raw_by_source: dict[str, list[Finding]] = {}
    to_analyze: list[str] = []
    data = {m: (tree, sources[m].splitlines())
            for m, _path, tree in modules}
    for m, _path, _tree in modules:
        payload = cache.load_module(m, keys[m]) if cache is not None \
            else None
        if payload is not None and all(
                n in payload.get("passes", {})
                or not registry[n].in_scope(m, package)
                for n in module_names):
            found: list[Finding] = []
            for n in module_names:
                found += _findings_from(payload["passes"].get(n, ()))
            raw_by_source[m] = found
            report.cached.append(m)
        else:
            to_analyze.append(m)

    results: dict[str, dict] = {}
    if to_analyze and jobs and jobs > 1:
        import multiprocessing
        _POOL_STATE = (module_names, registry, ctx, data, package)
        try:
            mp_ctx = multiprocessing.get_context("fork")
            with mp_ctx.Pool(min(jobs, len(to_analyze))) as pool:
                for module, by_pass, errors in pool.imap(
                        _pool_analyze, to_analyze):
                    results[module] = by_pass
                    for name, msg in errors:
                        report.errors.append(AnalysisError(name, msg))
        finally:
            _POOL_STATE = None
    else:
        for m in to_analyze:
            tree, lines = data[m]
            by_pass, errors = _analyze_module(
                m, tree, lines, module_names, registry, ctx, package)
            results[m] = by_pass
            for name, msg in errors:
                report.errors.append(AnalysisError(name, msg))

    errored_modules = {e.message.split(":", 1)[0]
                       for e in report.errors}
    for m in to_analyze:
        by_pass = results[m]
        raw_by_source[m] = _findings_from(
            f for found in by_pass.values() for f in found)
        report.analyzed.append(m)
        if cache is not None and m not in errored_modules:
            cache.store_module(m, keys[m], by_pass)

    if "conformance" in names:
        try:
            conf = _run_conformance()
            raw_by_source[CONFORMANCE_KEY] = conf
            report.analyzed.append(CONFORMANCE_KEY)
        except Exception as exc:
            tb = traceback.format_exception_only(type(exc),
                                                 exc)[-1].strip()
            report.errors.append(AnalysisError("conformance", tb))
            conf = None
        if cache is not None and conf is not None \
                and not report.errors:
            cache.store_tree(digest, {
                "passes": sorted(names),
                "conformance": _finding_dicts(conf)})
    elif cache is not None and not report.errors:
        cache.store_tree(digest, {"passes": sorted(names)})

    _finish_report(report, raw_by_source, entries)
    return report


def _finish_report(report: FlowReport,
                   raw_by_source: dict[str, list[Finding]],
                   entries: list[BaselineEntry]) -> None:
    """Apply the baseline (always fresh — cached values are raw) and
    sort deterministically."""
    all_raw = [f for _m, found in sorted(raw_by_source.items())
               for f in found]
    kept, suppressed = apply_baseline(all_raw, entries)
    report.findings.extend(kept)
    report.suppressed.extend(suppressed)
    report.findings.sort(key=lambda f: (f.module, f.lineno, f.rule))
    report.analyzed.sort()
    report.cached.sort()
