"""Statement-level control-flow graphs for the dataflow passes.

The flow passes (:mod:`repro.analysis.lifecycle` and friends) need to
reason about *paths* — "the slot popped on line 49 never reaches the
free list on the exception path" — which a flat AST walk cannot do.
This module turns one Python function body into a small CFG:

* one node per statement (compound statements contribute a *header*
  node carrying only the parts evaluated before the branch: the
  ``if``/``while`` test, the ``for`` iterable, the ``with`` items);
* **normal edges** follow sequential execution, branches, loops,
  ``break``/``continue``/``return``;
* **exception edges** leave any statement that may raise (calls,
  subscripts, ``raise``, ``assert``, attribute access is deliberately
  not counted) and run to the innermost ``except`` handlers — or to
  the synthetic :data:`EXC_EXIT` node when no handler encloses it;
* ``try``/``finally`` is handled conservatively: the ``finally`` suite
  is reachable from both the normal and the exceptional exits of the
  protected suite, and flows on to both the next statement and the
  enclosing exception target;
* nodes whose header contains ``yield``/``yield from``/``await`` are
  flagged (``has_yield``), so passes can treat them as preemption
  points, matching the concurrency sanitizer's yield discipline.

Two synthetic nodes terminate every CFG: :data:`EXIT` (normal return
or fall-off-the-end) and :data:`EXC_EXIT` (an exception escaping the
function).  Dataflow states joined into those nodes describe what is
true when the function returns, respectively when it unwinds.

The builder is deliberately conservative, never exact: a spurious edge
costs a false path (handled by the passes' lattices), a missing edge
would cost a missed bug.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Synthetic node id: normal function exit (return / end of body).
EXIT = -1
#: Synthetic node id: an exception propagating out of the function.
EXC_EXIT = -2
#: Synthetic node id: function entry (always present, never a statement).
ENTRY = 0


@dataclass
class CFGNode:
    """One statement (or statement header) in the graph."""

    nid: int
    #: The AST statement this node represents (None for ENTRY).
    stmt: Optional[ast.stmt]
    #: The sub-expressions evaluated *at* this node.  For compound
    #: statements this is the header only (test / iterable / items);
    #: body statements get their own nodes.
    exprs: tuple[ast.AST, ...] = ()
    #: Normal-flow successor node ids.
    succ: set[int] = field(default_factory=set)
    #: Exceptional successor node ids (taken when this node raises).
    exc: set[int] = field(default_factory=set)
    #: True when the header contains yield / yield from / await.
    has_yield: bool = False
    #: True when this node may raise (and therefore has live exc edges).
    may_raise: bool = False

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """Control-flow graph of a single function body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: dict[int, CFGNode] = {}
        self.yield_nodes: set[int] = set()

    def node(self, nid: int) -> CFGNode:
        return self.nodes[nid]

    def __iter__(self) -> Iterator[CFGNode]:
        return iter(self.nodes.values())


# -- raising / yield heuristics ------------------------------------------

_YIELDING = (ast.Yield, ast.YieldFrom, ast.Await)


def _may_raise(stmt: ast.stmt, exprs: tuple[ast.AST, ...]) -> bool:
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for expr in exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                return True
            # Subscript loads raise KeyError/IndexError for real;
            # subscript stores (dict insert) are treated as safe.
            if isinstance(sub, ast.Subscript) and \
                    isinstance(sub.ctx, ast.Load):
                return True
    return False


def _has_yield(exprs: tuple[ast.AST, ...]) -> bool:
    for expr in exprs:
        for sub in ast.walk(expr):
            if isinstance(sub, _YIELDING):
                return True
    return False


def _header_exprs(stmt: ast.stmt) -> tuple[ast.AST, ...]:
    """Sub-expressions evaluated at the statement's own node."""
    if isinstance(stmt, (ast.If, ast.While)):
        return (stmt.test,)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return (stmt.target, stmt.iter)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return tuple(stmt.items)
    if isinstance(stmt, ast.Try):
        return ()
    if isinstance(stmt, getattr(ast, "Match", ())):
        return (stmt.subject,)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        # Nested definitions are analyzed separately; only the
        # decorators run here.
        return tuple(stmt.decorator_list)
    return (stmt,)


@dataclass
class _Ctx:
    """Targets for non-local control flow at the current nesting."""

    #: Node ids exceptions flow to (handler headers and/or EXC_EXIT).
    exc: frozenset[int]
    #: Where `break` goes (collector set, filled by the loop builder).
    break_to: Optional[set[int]] = None
    #: Node id `continue` jumps to (the loop header).
    continue_to: Optional[int] = None


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG(func)
        self._next = 1
        entry = CFGNode(ENTRY, None)
        self.cfg.nodes[ENTRY] = entry

    def _new(self, stmt: ast.stmt) -> CFGNode:
        exprs = _header_exprs(stmt)
        node = CFGNode(self._next, stmt, exprs)
        node.may_raise = _may_raise(stmt, exprs)
        node.has_yield = _has_yield(exprs)
        self._next += 1
        self.cfg.nodes[node.nid] = node
        if node.has_yield:
            self.cfg.yield_nodes.add(node.nid)
        return node

    def _link(self, frontier: set[int], nid: int) -> None:
        for prev in frontier:
            self.cfg.nodes[prev].succ.add(nid)

    def build(self) -> CFG:
        body = getattr(self.cfg.func, "body", [])
        ctx = _Ctx(exc=frozenset({EXC_EXIT}))
        frontier = self._suite(body, {ENTRY}, ctx)
        for nid in frontier:
            self.cfg.nodes[nid].succ.add(EXIT)
        return self.cfg

    # -- statement dispatch ----------------------------------------------

    def _suite(self, stmts: list[ast.stmt], frontier: set[int],
               ctx: _Ctx) -> set[int]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier, ctx)
            if not frontier:      # unreachable rest of suite
                break
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: set[int],
              ctx: _Ctx) -> set[int]:
        node = self._new(stmt)
        self._link(frontier, node.nid)
        if node.may_raise:
            node.exc |= ctx.exc

        if isinstance(stmt, ast.Return):
            node.succ.add(EXIT)
            return set()
        if isinstance(stmt, ast.Raise):
            node.succ |= ctx.exc
            return set()
        if isinstance(stmt, ast.Break):
            if ctx.break_to is not None:
                ctx.break_to.add(node.nid)
            return set()
        if isinstance(stmt, ast.Continue):
            if ctx.continue_to is not None:
                node.succ.add(ctx.continue_to)
            return set()
        if isinstance(stmt, ast.If):
            then_out = self._suite(stmt.body, {node.nid}, ctx)
            else_out = self._suite(stmt.orelse, {node.nid}, ctx) \
                if stmt.orelse else {node.nid}
            return then_out | else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            after: set[int] = set()
            loop_ctx = _Ctx(exc=ctx.exc, break_to=after,
                            continue_to=node.nid)
            body_out = self._suite(stmt.body, {node.nid}, loop_ctx)
            self._link(body_out, node.nid)        # back edge
            # Loop may run zero times (While test false / For empty).
            exits = {node.nid} | after
            if stmt.orelse:
                exits = self._suite(stmt.orelse, {node.nid}, ctx) | after
            return exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._suite(stmt.body, {node.nid}, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, node, ctx)
        match_cls = getattr(ast, "Match", None)
        if match_cls is not None and isinstance(stmt, match_cls):
            outs: set[int] = {node.nid}       # no case may match
            for case in stmt.cases:
                outs |= self._suite(case.body, {node.nid}, ctx)
            return outs
        # Simple statement (incl. nested def/class): straight-line.
        return {node.nid}

    def _try(self, stmt: ast.Try, node: CFGNode, ctx: _Ctx) -> set[int]:
        # Handler header nodes are created first so the protected
        # suite's exception edges can point at them.
        handler_nodes = []
        for handler in stmt.handlers:
            hnode = CFGNode(self._next, handler,
                            (handler.type,) if handler.type else ())
            self._next += 1
            self.cfg.nodes[hnode.nid] = hnode
            handler_nodes.append(hnode)

        # An exception in the body may match a handler or escape (none
        # that matches — we cannot tell).  A catch-all handler (bare
        # `except:` / `except Exception` / `except BaseException`)
        # intercepts everything, so the escape edge is dropped: without
        # this, every try/cleanup/re-raise pattern would look like a
        # path that skips its own cleanup.
        def _catch_all(handler: ast.ExceptHandler) -> bool:
            if handler.type is None:
                return True
            return (isinstance(handler.type, ast.Name)
                    and handler.type.id in ("Exception", "BaseException"))

        inner_exc = frozenset({h.nid for h in handler_nodes})
        if not any(_catch_all(h) for h in stmt.handlers):
            inner_exc |= ctx.exc
        body_ctx = _Ctx(exc=inner_exc, break_to=ctx.break_to,
                        continue_to=ctx.continue_to)
        body_out = self._suite(stmt.body, {node.nid}, body_ctx)

        outs: set[int] = set()
        if stmt.orelse:
            outs |= self._suite(stmt.orelse, body_out, ctx)
        else:
            outs |= body_out
        for handler, hnode in zip(stmt.handlers, handler_nodes):
            outs |= self._suite(handler.body, {hnode.nid}, ctx)

        if stmt.finalbody:
            # Conservative: the finally suite sees every exit —
            # normal, handled, and unwinding — and flows on to both
            # the next statement and the enclosing exception target.
            fin_in = outs | {h.nid for h in handler_nodes} | {node.nid}
            fin_out = self._suite(stmt.finalbody, fin_in, ctx)
            for nid in fin_out:
                self.cfg.nodes[nid].succ |= ctx.exc
            return fin_out
        return outs


def build_cfg(func: ast.AST) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()


def iter_functions(tree: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(dotted qualname, FunctionDef)`` for every function in
    *tree*, including methods and nested functions."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                yield name, child
                yield from walk(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")
