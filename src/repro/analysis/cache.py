"""Incremental analysis cache: content-hash keyed, summary-aware.

``repro check`` is a hard CI gate, and the flow passes re-parse and
re-analyze every module from scratch on every run.  This store makes
the common case — nothing changed, or one module changed — cheap:

* **whole-tree fast path** — ``tree.json`` records a digest over every
  module's source plus every pass version.  When it matches, all
  cached per-module results (and the whole-tree conformance result)
  are served with *zero* analysis work: no parsing, no call graph, no
  summary fixpoint.

* **per-module keys** — when the tree digest misses, each module's key
  is ``sha256(source + pass versions + own summary digest + each
  dependency's summary digest)``, where dependencies are the modules
  containing any resolved callee (call-graph edges, not imports).
  Editing module A re-analyzes A and exactly the modules whose
  summaries A's change reaches — the reverse-dependency cone, pruned
  further when A's exported summaries are in fact unchanged (a
  comment-only edit invalidates nothing downstream; summaries carry
  no line numbers).

Cached values are *raw* findings, before baseline suppression, so
editing ``flow_baseline.txt`` changes reported output without
invalidating anything.  A module whose analysis crashed is never
stored — the next run retries it.

Layout under the cache directory (default ``.repro-cache/``)::

    tree.json             whole-tree digest + conformance findings
    modules/<dotted>.json per-module key + per-pass findings
    stats.json            last run's analyzed/cached counters
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Optional

#: Bumped when the on-disk format changes; part of every digest.
CACHE_FORMAT = "1"

DEFAULT_DIR = Path(".repro-cache")


def _sha(parts: Iterable[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def tree_digest(sources: dict[str, str], versions: dict[str, str]) -> str:
    """Digest over every module's source and every pass version."""
    parts = [CACHE_FORMAT]
    parts += [f"{m}\n{src}" for m, src in sorted(sources.items())]
    parts += [f"{name}={ver}" for name, ver in sorted(versions.items())]
    return _sha(parts)


def module_key(source: str, versions: dict[str, str],
               own_digest: str, dep_digests: dict[str, str]) -> str:
    """Cache key for one module's per-module pass results."""
    parts = [CACHE_FORMAT, source]
    parts += [f"{name}={ver}" for name, ver in sorted(versions.items())]
    parts.append(f"self={own_digest}")
    parts += [f"{dep}={d}" for dep, d in sorted(dep_digests.items())]
    return _sha(parts)


class AnalysisCache:
    """Content-addressed store under one directory (see module doc)."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.dir = Path(directory) if directory is not None \
            else DEFAULT_DIR
        self.modules_dir = self.dir / "modules"

    # -- low-level json io --------------------------------------------------

    @staticmethod
    def _read(path: Path) -> Optional[dict]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    @staticmethod
    def _write(path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        tmp.replace(path)

    # -- whole-tree section ---------------------------------------------------

    def load_tree(self, digest: str) -> Optional[dict]:
        """The tree.json payload, when its digest matches."""
        payload = self._read(self.dir / "tree.json")
        if payload is not None and payload.get("digest") == digest:
            return payload
        return None

    def store_tree(self, digest: str, payload: dict) -> None:
        payload = dict(payload)
        payload["digest"] = digest
        self._write(self.dir / "tree.json", payload)

    # -- per-module section ---------------------------------------------------

    def load_module(self, module: str, key: str) -> Optional[dict]:
        """The module's per-pass findings, when its key matches."""
        payload = self._read(self.modules_dir / f"{module}.json")
        if payload is not None and payload.get("key") == key:
            return payload
        return None

    def load_module_unchecked(self, module: str) -> Optional[dict]:
        """The module's stored payload regardless of key (the
        whole-tree fast path has already proven freshness)."""
        return self._read(self.modules_dir / f"{module}.json")

    def store_module(self, module: str, key: str,
                     findings_by_pass: dict[str, list[dict]]) -> None:
        self._write(self.modules_dir / f"{module}.json",
                    {"key": key, "passes": findings_by_pass})

    # -- lint section -----------------------------------------------------------

    def load_lint(self, digest: str) -> Optional[dict]:
        """The cached layering/concurrency lint results (as strings),
        when their tree digest matches."""
        payload = self._read(self.dir / "lint.json")
        if payload is not None and payload.get("digest") == digest:
            return payload
        return None

    def store_lint(self, digest: str, violations: list[str]) -> None:
        self._write(self.dir / "lint.json",
                    {"digest": digest, "violations": violations})

    # -- stats -----------------------------------------------------------------

    def write_stats(self, stats: dict) -> None:
        self._write(self.dir / "stats.json", stats)

    def read_stats(self) -> Optional[dict]:
        return self._read(self.dir / "stats.json")
