"""Versioned ``repro check --report`` format + tolerant consumer.

The report used to be bare finding lines; consumers that diff reports
across PRs broke whenever a pass was added.  The format is now JSON
with an explicit ``schema_version``; findings are sorted by
``(file, line, rule)`` so two clean runs produce byte-identical
reports.  :func:`load_report` is the matching consumer, built the way
``bench/compare.py`` reads the BENCH series: every field is optional,
a missing section reads as empty, and the pre-JSON plain-text format
still loads (one problem string per line) — a consumer must tolerate
reports both older and newer than itself.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

#: Bumped on incompatible report layout changes.
SCHEMA_VERSION = 1


def render_report(problems: list[str], findings: list,
                  errors: list, suppressed: int,
                  analyzed: int, cached: int,
                  wall_s: Optional[float] = None) -> str:
    """The canonical report text: versioned, deterministically
    ordered JSON (findings arrive pre-sorted by (file, line, rule)
    from the flow runner; keys are sorted here)."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "clean": not problems,
        "problems": list(problems),
        "findings": [
            {"pass": f.pass_name, "file": f.module, "line": f.lineno,
             "rule": f.rule, "where": f.where, "message": f.message}
            for f in findings],
        "errors": [str(e) for e in errors],
        "suppressed": suppressed,
        "analyzed": analyzed,
        "cached": cached,
    }
    if wall_s is not None:
        payload["wall_s"] = round(wall_s, 3)
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def load_report(path: str | Path) -> dict:
    """Read a report written by any ``repro check`` vintage.

    Always returns a dict with at least ``schema_version`` (0 for the
    legacy plain-text format), ``problems`` (list of strings) and
    ``findings`` (list of dicts); unknown fields from newer schemas
    are passed through untouched.
    """
    text = Path(path).read_text()
    try:
        payload = json.loads(text) if text.strip() else {}
    except ValueError:
        payload = None
    if not isinstance(payload, dict):
        # Legacy: one problem line per row, empty file when clean.
        lines = [ln for ln in text.splitlines() if ln.strip()]
        return {"schema_version": 0, "problems": lines,
                "findings": [], "clean": not lines}
    out = dict(payload)
    out.setdefault("schema_version", 0)
    problems = out.get("problems")
    out["problems"] = list(problems) if isinstance(problems, list) \
        else []
    findings = out.get("findings")
    out["findings"] = [f for f in findings
                       if isinstance(f, dict)] \
        if isinstance(findings, list) else []
    out.setdefault("clean", not out["problems"])
    return out
