"""Static and dynamic enforcement of the MD/MI contract.

* :mod:`repro.analysis.layering` — AST import lint for the paper's
  module boundary (machine-independent code vs. the pmap layer vs. the
  hardware substrate);
* :mod:`repro.analysis.invariants` — runtime sanitizer proving every
  pmap/TLB translation is a subset of machine-independent truth;
* :mod:`repro.analysis.sweeps` — workload sweeps that drive the
  sanitizer across all five pmap architectures;
* :mod:`repro.analysis.race` — the concurrency sanitizer: may-yield
  atomicity lint, ``#: guarded-by`` contract, and a vector-clock
  happens-before checker for TLB shootdown;
* :mod:`repro.analysis.schedules` — schedule policies (seeded-random,
  recording/replay) and bounded DFS exploration of interleavings;
* :mod:`repro.analysis.cfg` / :mod:`repro.analysis.flow` — the AST→CFG
  dataflow framework (exception edges, yield points, forward worklist
  solver) shared by the flow passes;
* :mod:`repro.analysis.lifecycle` — resource acquire/release pairing
  along all paths (swap slots, vm_object references, resident pages,
  holding maps, port rights);
* :mod:`repro.analysis.conformance` — pmap MI-contract verifier over
  the live registry (coverage, signatures, TLB invalidation,
  reach-around imports);
* :mod:`repro.analysis.errorpaths` — transient-error call sites must
  meet the PR 2 retry policy (or carry ``#: no-retry``); broad
  swallowing excepts in kernel paths are flagged;
* :mod:`repro.analysis.determinism` — no wall clock / unseeded
  randomness in replayed simulation code.

Run the static checks via ``python -m repro check``; run the race
storm via ``python -m repro races``.
"""

from repro.analysis.invariants import (
    SanitizerError,
    Violation,
    assert_all,
    check_all,
    check_tlbs,
    install_sanitizer,
    uninstall_sanitizer,
)
from repro.analysis.conformance import (
    verify_pmap_class,
    verify_pmap_conformance,
)
from repro.analysis.flow import (
    AnalysisError,
    Finding,
    FlowReport,
    load_baseline,
    run_flow_passes,
)
from repro.analysis.layering import LintViolation, lint_package, lint_source_tree
from repro.analysis.race import (
    RaceCellResult,
    RaceDetector,
    RaceReport,
    explore_shootdown,
    lint_atomicity,
    lint_atomicity_source,
    lint_concurrency,
    lint_guarded_by,
    lint_source_concurrency,
    run_race_cell,
    run_races,
)
from repro.analysis.schedules import (
    ExplorationResult,
    RecordingPolicy,
    SeededRandomPolicy,
    explore_schedules,
)
from repro.analysis.sweeps import SweepResult, run_sweeps

__all__ = [
    "AnalysisError",
    "ExplorationResult",
    "Finding",
    "FlowReport",
    "LintViolation",
    "RaceCellResult",
    "RaceDetector",
    "RaceReport",
    "RecordingPolicy",
    "SanitizerError",
    "SeededRandomPolicy",
    "SweepResult",
    "Violation",
    "assert_all",
    "check_all",
    "check_tlbs",
    "explore_schedules",
    "explore_shootdown",
    "install_sanitizer",
    "lint_atomicity",
    "lint_atomicity_source",
    "lint_concurrency",
    "lint_guarded_by",
    "lint_package",
    "lint_source_concurrency",
    "lint_source_tree",
    "load_baseline",
    "run_flow_passes",
    "run_race_cell",
    "run_races",
    "run_sweeps",
    "uninstall_sanitizer",
    "verify_pmap_class",
    "verify_pmap_conformance",
]
