"""Static and dynamic enforcement of the MD/MI contract.

* :mod:`repro.analysis.layering` — AST import lint for the paper's
  module boundary (machine-independent code vs. the pmap layer vs. the
  hardware substrate);
* :mod:`repro.analysis.invariants` — runtime sanitizer proving every
  pmap/TLB translation is a subset of machine-independent truth;
* :mod:`repro.analysis.sweeps` — workload sweeps that drive the
  sanitizer across all five pmap architectures.

Run both via ``python -m repro check`` (or the ``repro-check`` console
script).
"""

from repro.analysis.invariants import (
    SanitizerError,
    Violation,
    assert_all,
    check_all,
    check_tlbs,
    install_sanitizer,
    uninstall_sanitizer,
)
from repro.analysis.layering import LintViolation, lint_package, lint_source_tree
from repro.analysis.sweeps import SweepResult, run_sweeps

__all__ = [
    "LintViolation",
    "SanitizerError",
    "SweepResult",
    "Violation",
    "assert_all",
    "check_all",
    "check_tlbs",
    "install_sanitizer",
    "lint_package",
    "lint_source_tree",
    "run_sweeps",
    "uninstall_sanitizer",
]
