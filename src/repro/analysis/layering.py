"""Static layering lint: the MD/MI split as import rules.

Section 3.6 of the paper draws a hard line through the system: all
virtual-memory *truth* lives in the machine-independent data structures
(address maps, memory objects, the resident page table), while the
machine-dependent pmap modules are mere caches behind the Table 3-3/3-4
interface.  That line only survives refactoring if it is checked
mechanically, so this module walks ``src/repro`` with the stdlib ``ast``
parser (no third-party dependencies, no imports of the checked code) and
enforces the boundary as import rules:

* **concrete-pmap-import** — nothing outside ``repro.pmap`` may import a
  concrete pmap implementation (``repro.pmap.vax``, ``.rt_pc``,
  ``.sun3``, ``.sun3_vac``, ``.ns32082``, ``.generic``) or the
  ``repro.pmap`` package itself (whose ``__init__`` re-exports them).
  The interface (``repro.pmap.interface``) and the name-to-class
  registry (``repro.pmap.registry``) are the only sanctioned doors.
* **mi-imports-hw-internals** — machine-independent code (``repro.core``,
  ``repro.pager``, ``repro.ipc``) may import from ``repro.hw`` only the
  substrate contract: machine specs (``hw.machine``), the frame store
  (``hw.physmem``), the clock and the cost model.  TLBs, CPUs and the
  MMU are hardware the MI layer must never touch directly — mapping
  changes reach them through ``pmap_enter``/``pmap_remove`` and the
  shootdown machinery only.
* **pmap-imports-mi-state** — pmap modules may import from ``repro.core``
  only the shared vocabulary (``core.constants``, ``core.errors``);
  reaching into address maps, objects or the resident table would let
  MD code depend on MI mutable state, inverting the paper's contract.
* **pmap-imports-upper-layer** / **hw-imports-upper-layer** — the
  dependency order is ``hw`` < ``pmap`` < machine-independent VM <
  drivers; lower layers never import upward.  One telemetry exception:
  ``repro.obs.bus`` (the event bus every layer emits into) is
  standard-library self-contained and importable from anywhere; the
  rest of ``repro.obs`` remains an upper layer.
* **hook-inversion** — the checked layers never import their checkers:
  ``repro.analysis`` (invariants, race detection, schedule exploration)
  attaches to the system only through the event bus
  (``kernel.events.subscribe``) and duck-typed hook attributes
  (``MachKernel.sanitize_hook``, ``PmapSystem.debug_hook``), so
  ``sched`` and ``core`` must not import ``analysis`` (for ``hw`` and
  ``pmap`` the upper-layer rules already forbid it).
* **star-import** — ``from x import *`` anywhere in the tree.
* **import-cycle** — no cycle among module-level imports (imports inside
  functions are deliberately excluded: they are the sanctioned way to
  break a load-order knot, and they cannot deadlock module init).

Run it via ``python -m repro check --lint-only`` or
:func:`lint_package` directly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

#: Machine-independent packages (relative to the package root).
MI_PACKAGES = ("core", "pager", "ipc")

#: The only pmap modules importable from outside the pmap layer.
PMAP_INTERFACE = ("pmap.interface", "pmap.registry")

#: hw modules that are substrate contract, not MMU internals.
HW_SUBSTRATE = ("hw.machine", "hw.physmem", "hw.clock", "hw.costs")

#: Vocabulary modules importable from every layer (immutable constants
#: and exception types only — no mutable state).
VOCABULARY = ("core.constants", "core.errors")

#: Telemetry modules importable from every layer.  ``obs.bus`` holds
#: the event bus that all layers emit into; it is standard-library
#: self-contained (imports nothing from ``repro``), so letting hw and
#: pmap import it creates no dependency on upper-layer state.  The rest
#: of ``repro.obs`` (metrics, exporters) stays an upper layer.
TELEMETRY = ("obs.bus",)

#: Packages/modules that sit *above* the machine-independent VM layer;
#: neither hw nor pmap code may import them (``obs.bus`` excepted — see
#: TELEMETRY).  ``inject`` belongs here: fault injection reaches
#: downward only through duck-typed hooks (``SimDisk.injector``,
#: ``Port.injector``), never via imports from below.
UPPER_LAYERS = ("pager", "ipc", "fs", "unix", "bench", "baseline",
                "dist", "sched", "analysis", "inject", "viz", "obs",
                "trace", "cli")


#: Part of the lint cache key: bump on any rule/behavior change.
LINT_VERSION = "1"


@dataclass(frozen=True)
class LintViolation:
    """One broken layering rule at one import site."""

    module: str
    lineno: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.module}:{self.lineno}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class ImportSite:
    """One import statement, resolved to a module name."""

    target: str          # absolute dotted name (may be external)
    lineno: int
    star: bool           # ``from target import *``
    module_level: bool   # executes at import time (not inside a def)


def _iter_py_files(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        yield path


def _module_name(root: Path, path: Path, package: str) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts)


class _ImportCollector(ast.NodeVisitor):
    """Collect every import of *module*, resolving relative forms."""

    def __init__(self, module: str, is_package: bool,
                 known_modules: set[str]) -> None:
        self.module = module
        self.is_package = is_package
        self.known = known_modules
        self.sites: list[ImportSite] = []
        self._func_depth = 0

    # Imports inside functions run lazily; they cannot participate in a
    # load-time cycle, so they are tagged module_level=False.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def _add(self, target: str, lineno: int, star: bool = False) -> None:
        self.sites.append(ImportSite(target=target, lineno=lineno,
                                     star=star,
                                     module_level=self._func_depth == 0))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, node.lineno)

    def _relative_base(self, node: ast.ImportFrom) -> Optional[str]:
        """Resolve ``from . import x`` / ``from ..y import z``."""
        parts = self.module.split(".")
        if not self.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        base_parts = parts[:len(parts) - drop] if drop else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self._relative_base(node)
        else:
            base = node.module
        if base is None:
            return
        star = any(alias.name == "*" for alias in node.names)
        self._add(base, node.lineno, star=star)
        # ``from repro.pmap import vax`` names a *module*, not an
        # attribute; resolve each name against the walked module set so
        # the rules see the true target.
        for alias in node.names:
            if alias.name != "*" and f"{base}.{alias.name}" in self.known:
                self._add(f"{base}.{alias.name}", node.lineno)


def collect_imports(root: Path, package: str = "repro"
                    ) -> dict[str, list[ImportSite]]:
    """Parse every module under *root*; return module -> import sites.

    Modules that fail to parse appear with a single pseudo-site whose
    target is ``"<syntax-error>"`` so the lint can report them.
    """
    paths = {_module_name(root, path, package): path
             for path in _iter_py_files(root)}
    known = set(paths)
    result: dict[str, list[ImportSite]] = {}
    for module, path in paths.items():
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except SyntaxError as exc:
            result[module] = [ImportSite("<syntax-error>",
                                         exc.lineno or 0, False, True)]
            continue
        collector = _ImportCollector(module,
                                     path.name == "__init__.py", known)
        collector.visit(tree)
        result[module] = collector.sites
    return result


def _strip(name: str, package: str) -> Optional[str]:
    """``repro.core.kernel`` -> ``core.kernel``; None when external."""
    if name == package:
        return ""
    prefix = package + "."
    if name.startswith(prefix):
        return name[len(prefix):]
    return None


def _within(module: str, layer: str) -> bool:
    return module == layer or module.startswith(layer + ".")


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's strongly connected components; returns the non-trivial
    SCCs (every member list is one genuine import cycle)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(node: str) -> None:
        # Iterative DFS: recursion depth would otherwise track the
        # longest import chain.
        work = [(node, iter(sorted(graph.get(node, ()))))]
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, edges = work[-1]
            advanced = False
            for succ in edges:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[current] = min(lowlink[current], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))
                elif current in graph.get(current, ()):
                    cycles.append([current])

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return cycles


def lint_package(root: Path, package: str = "repro"
                 ) -> list[LintViolation]:
    """Lint the package rooted at *root*; returns all violations.

    *root* is the directory containing the package's ``__init__.py``
    (e.g. ``src/repro``); *package* is the dotted name the rules treat
    it as.  An empty list means the tree obeys the layering contract.
    """
    imports = collect_imports(root, package)
    known_rel = {_strip(m, package) for m in imports}
    concrete_pmaps = {m for m in known_rel
                      if m and _within(m, "pmap")
                      and m != "pmap" and m not in PMAP_INTERFACE}
    violations: list[LintViolation] = []
    graph: dict[str, set[str]] = {m: set() for m in imports}

    for module, sites in sorted(imports.items()):
        mod_rel = _strip(module, package)
        if mod_rel is None:
            continue
        in_mi = any(_within(mod_rel, pkg) for pkg in MI_PACKAGES)
        in_pmap = _within(mod_rel, "pmap")
        in_hw = _within(mod_rel, "hw")
        for site in sites:
            if site.target == "<syntax-error>":
                violations.append(LintViolation(
                    module, site.lineno, "syntax-error",
                    "module failed to parse"))
                continue
            if site.star:
                violations.append(LintViolation(
                    module, site.lineno, "star-import",
                    f"'from {site.target} import *' hides the import "
                    f"graph from readers and tools"))
            tgt = _strip(site.target, package)
            if tgt is None:
                continue   # stdlib / external: out of scope
            if (site.module_level and site.target in imports
                    and site.target != module):
                # A package importing its own submodules ("from . import
                # x") resolves its base to itself; that is not a cycle.
                graph[module].add(site.target)
            if not in_pmap and (tgt == "pmap" or tgt in concrete_pmaps):
                violations.append(LintViolation(
                    module, site.lineno, "concrete-pmap-import",
                    f"imports {site.target}; outside the pmap layer "
                    f"only pmap.interface and pmap.registry are "
                    f"importable (Table 3-3 is the whole contract)"))
            if in_mi and _within(tgt, "hw") and tgt not in HW_SUBSTRATE:
                violations.append(LintViolation(
                    module, site.lineno, "mi-imports-hw-internals",
                    f"machine-independent code imports {site.target}; "
                    f"TLB/CPU/MMU state is reachable only through the "
                    f"pmap interface (allowed: "
                    f"{', '.join(HW_SUBSTRATE)})"))
            if in_pmap:
                if _within(tgt, "core") and tgt not in VOCABULARY:
                    violations.append(LintViolation(
                        module, site.lineno, "pmap-imports-mi-state",
                        f"pmap module imports {site.target}; MD code "
                        f"may use only the shared vocabulary "
                        f"({', '.join(VOCABULARY)}) — all other MI "
                        f"state arrives through Table 3-3 arguments"))
                elif (any(_within(tgt, up) for up in UPPER_LAYERS)
                        and tgt not in TELEMETRY):
                    violations.append(LintViolation(
                        module, site.lineno, "pmap-imports-upper-layer",
                        f"pmap module imports {site.target}, which "
                        f"sits above the pmap layer"))
            if (_within(tgt, "analysis")
                    and (_within(mod_rel, "sched")
                         or any(_within(mod_rel, pkg)
                                for pkg in MI_PACKAGES))):
                violations.append(LintViolation(
                    module, site.lineno, "hook-inversion",
                    f"{module} imports {site.target}; the sanitizer "
                    f"attaches by subscribing to the kernel's event "
                    f"bus (kernel.events) — checked layers never "
                    f"import their checkers"))
            if in_hw and tgt is not None and tgt != "" \
                    and not _within(tgt, "hw") and tgt not in VOCABULARY \
                    and tgt not in TELEMETRY:
                violations.append(LintViolation(
                    module, site.lineno, "hw-imports-upper-layer",
                    f"hardware substrate imports {site.target}; hw "
                    f"may depend only on itself, the vocabulary "
                    f"({', '.join(VOCABULARY)}) and the event bus "
                    f"({', '.join(TELEMETRY)})"))

    for cycle in _find_cycles(graph):
        violations.append(LintViolation(
            cycle[0], 0, "import-cycle",
            "module-level import cycle: " + " -> ".join(cycle)))

    violations.sort(key=lambda v: (v.module, v.lineno, v.rule))
    return violations


def lint_source_tree() -> list[LintViolation]:
    """Lint the installed ``repro`` package itself."""
    import repro
    return lint_package(Path(repro.__file__).resolve().parent)
