"""Inodes: per-file metadata and block maps."""

from __future__ import annotations

import itertools

_inode_numbers = itertools.count(2)  # 1 is reserved for the root


class Inode:
    """One file's metadata: size and the ordered list of data blocks.

    The block list is flat (no indirect blocks) — simulation-scale files
    are small enough that the indirection would add structure without
    changing any measured behaviour.
    """

    def __init__(self, number: int | None = None) -> None:
        self.number = number if number is not None else next(_inode_numbers)
        self.size = 0
        self.blocks: list[int] = []
        self.link_count = 1

    def bmap(self, offset: int, block_size: int) -> int:
        """Logical byte offset -> physical disk block."""
        index = offset // block_size
        if index >= len(self.blocks):
            raise ValueError(
                f"offset {offset} beyond inode {self.number} "
                f"({self.size} bytes)")
        return self.blocks[index]

    def __repr__(self) -> str:
        return f"Inode(#{self.number}, {self.size} bytes, " \
               f"{len(self.blocks)} blocks)"
