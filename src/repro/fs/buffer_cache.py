"""The 4.3bsd-style buffer cache.

Table 7-2 compares Mach and 4.3bsd under a "Generic configuration"
(the stock allocation of disk buffers) and a "400 buffers" configuration
("specific limits set on the use of disk buffers by both systems").  The
buffer count here is exactly that knob: traditional UNIX file caching
lives *only* in this fixed pool, while Mach additionally keeps file
pages in memory objects — the structural reason its second file read in
Table 7-1 is cheap.
"""

from __future__ import annotations

from collections import OrderedDict


class BufferCache:
    """Write-back LRU cache of disk blocks."""

    def __init__(self, disk, nbufs: int = 400) -> None:
        if nbufs < 1:
            raise ValueError("need at least one buffer")
        self.disk = disk
        self.nbufs = nbufs
        self._cache: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def machine(self):
        """The machine this component belongs to."""
        return self.disk.machine

    def _touch(self, block: int) -> None:
        self._cache.move_to_end(block)

    def _evict_for_space(self) -> None:
        while len(self._cache) >= self.nbufs:
            victim, data = self._cache.popitem(last=False)
            if victim in self._dirty:
                #: no-retry — a failed writeback surfaces to the syscall
                #: that forced the eviction; the block stays dirty-lost
                #: like 4.3bsd's bwrite on a bad sector.
                self.disk.write_block(victim, bytes(data))
                self._dirty.discard(victim)
                self.writebacks += 1

    def read(self, block: int) -> bytes:
        """Read one block through the cache."""
        costs = self.machine.costs
        buf = self._cache.get(block)
        if buf is not None:
            self.machine.clock.charge(costs.buffer_cache_hit_us)
            self.hits += 1
            self.machine.events.emit("fs", "cache_hit", block=block,
                                     op="read")
            self._touch(block)
            return bytes(buf)
        self.misses += 1
        self.machine.events.emit("fs", "cache_miss", block=block,
                                 op="read")
        #: no-retry — a miss-path medium error propagates to the
        #: reading syscall; retry policy belongs to the caller.
        data = self.disk.read_block(block)
        self._evict_for_space()
        self._cache[block] = bytearray(data)
        return data

    def write(self, block: int, data: bytes) -> None:
        """Write one block (write-back: dirty in cache until evicted or
        synced)."""
        costs = self.machine.costs
        if len(data) < self.disk.block_size:
            data = bytes(data) + bytes(self.disk.block_size - len(data))
        buf = self._cache.get(block)
        if buf is not None:
            self.hits += 1
            self.machine.clock.charge(costs.buffer_cache_hit_us)
            self.machine.events.emit("fs", "cache_hit", block=block,
                                     op="write")
            buf[:] = data
            self._touch(block)
        else:
            self.misses += 1
            self.machine.events.emit("fs", "cache_miss", block=block,
                                     op="write")
            self._evict_for_space()
            self._cache[block] = bytearray(data)
        self._dirty.add(block)

    def peek_dirty(self, block: int) -> bytes | None:
        """The cached copy of *block* when it is dirty, else None.

        Direct (pager) reads must see not-yet-written-back data; clean
        blocks can come straight off the disk.
        """
        if block in self._dirty:
            return bytes(self._cache[block])
        return None

    def drop_block(self, block: int) -> None:
        """Forget any cached copy of *block* without writing it back —
        used when a pager writes the block directly to disk, making the
        cached copy stale."""
        self._cache.pop(block, None)
        self._dirty.discard(block)

    def sync(self) -> int:
        """Flush every dirty buffer; returns the number written."""
        flushed = 0
        for block in sorted(self._dirty):
            #: no-retry — sync reports the first failure to its caller
            #: (fsync semantics); unsynced blocks simply stay dirty.
            self.disk.write_block(block, bytes(self._cache[block]))
            flushed += 1
            self.writebacks += 1
        self._dirty.clear()
        return flushed

    def invalidate(self) -> None:
        """Drop the whole cache (unmount / test isolation)."""
        self.sync()
        self._cache.clear()

    @property
    def cached_blocks(self) -> int:
        """Number of blocks currently held in the cache."""
        return len(self._cache)

    def __repr__(self) -> str:
        return (f"BufferCache({len(self._cache)}/{self.nbufs} bufs, "
                f"hits={self.hits}, misses={self.misses})")
