"""A simulated block device.

Transfers charge *elapsed* time on the machine clock (the CPU is idle
while the disk works) plus a small CPU cost for the interrupt/completion
path.  Sequential block access skips the seek charge, which is what
makes large file reads bandwidth-bound rather than seek-bound — the
regime of the paper's 2.5 MB read benchmark.

Failure semantics: every transfer consults an optional *injector*
(duck-typed, see :mod:`repro.inject`) which may add latency spikes or
raise :class:`~repro.core.errors.DiskIOError`.  Errors are raised, not
returned — a failed read never hands back a half block or stale data,
and a failed write leaves the previous block contents intact.  Reads
always return exactly ``block_size`` bytes: short writes are padded
with zeros at write time so an unwritten tail can never alias a
truncated buffer.
"""

from __future__ import annotations

from typing import Optional


class SimDisk:
    """Fixed-geometry block store with cost accounting."""

    def __init__(self, machine, nblocks: int = 8192,
                 block_size: int = 8192) -> None:
        self.machine = machine
        self.nblocks = nblocks
        self.block_size = block_size
        self._blocks: dict[int, bytes] = {}
        self._last_block: Optional[int] = None
        self.reads = 0
        self.writes = 0
        self.seeks = 0
        self.read_errors = 0
        self.write_errors = 0
        #: Optional fault injector (duck-typed: ``on_disk_io(disk, op,
        #: block)`` may wait on the clock and/or raise ``DiskIOError``).
        #: ``None`` — the default — costs nothing.
        self.injector = None

    def _charge(self, block: int) -> None:
        costs = self.machine.costs
        sequential = (self._last_block is not None
                      and block in (self._last_block,
                                    self._last_block + 1))
        if not sequential:
            self.machine.clock.wait(costs.disk_seek_us)
            self.seeks += 1
        self.machine.clock.wait(costs.disk_block_us)
        self.machine.clock.charge(costs.disk_block_cpu_us)
        self._last_block = block

    def _check(self, block: int) -> None:
        if not 0 <= block < self.nblocks:
            raise ValueError(f"block {block} out of range "
                             f"[0, {self.nblocks})")

    def _perturb(self, op: str, block: int, counter: str) -> None:
        """Give the fault injector its shot at this transfer; a raised
        ``DiskIOError`` counts against the per-direction error stat."""
        if self.injector is None:
            return
        try:
            self.injector.on_disk_io(self, op, block)
        except Exception:
            setattr(self, counter, getattr(self, counter) + 1)
            raise

    def read_block(self, block: int) -> bytes:
        """Read one block (charges seek/transfer costs).

        Always returns exactly ``block_size`` bytes; unwritten blocks
        read as zeros.  Raises ``DiskIOError`` on an injected medium
        error.
        """
        self._check(block)
        with self.machine.events.span("disk", "read", block=block):
            self._charge(block)
            self._perturb("read", block, "read_errors")
            self.reads += 1
        data = self._blocks.get(block)
        if data is None:
            return bytes(self.block_size)
        assert len(data) == self.block_size, \
            f"block {block} stored with {len(data)} bytes"
        return data

    def write_block(self, block: int, data: bytes) -> None:
        """Write one block (charges seek/transfer costs).

        Short writes are padded to ``block_size`` with zeros before
        being stored, so a later ``read_block`` returns a full block.
        On an injected error the previous contents survive untouched.
        """
        self._check(block)
        if len(data) > self.block_size:
            raise ValueError("data larger than a block")
        with self.machine.events.span("disk", "write", block=block):
            self._charge(block)
            self._perturb("write", block, "write_errors")
            self.writes += 1
        if len(data) < self.block_size:
            data = bytes(data) + bytes(self.block_size - len(data))
        self._blocks[block] = bytes(data)

    def __repr__(self) -> str:
        return (f"SimDisk({self.nblocks}x{self.block_size}B, "
                f"reads={self.reads}, writes={self.writes})")
