"""A simulated block device.

Transfers charge *elapsed* time on the machine clock (the CPU is idle
while the disk works) plus a small CPU cost for the interrupt/completion
path.  Sequential block access skips the seek charge, which is what
makes large file reads bandwidth-bound rather than seek-bound — the
regime of the paper's 2.5 MB read benchmark.
"""

from __future__ import annotations

from typing import Optional


class SimDisk:
    """Fixed-geometry block store with cost accounting."""

    def __init__(self, machine, nblocks: int = 8192,
                 block_size: int = 8192) -> None:
        self.machine = machine
        self.nblocks = nblocks
        self.block_size = block_size
        self._blocks: dict[int, bytes] = {}
        self._last_block: Optional[int] = None
        self.reads = 0
        self.writes = 0
        self.seeks = 0

    def _charge(self, block: int) -> None:
        costs = self.machine.costs
        sequential = (self._last_block is not None
                      and block in (self._last_block,
                                    self._last_block + 1))
        if not sequential:
            self.machine.clock.wait(costs.disk_seek_us)
            self.seeks += 1
        self.machine.clock.wait(costs.disk_block_us)
        self.machine.clock.charge(costs.disk_block_cpu_us)
        self._last_block = block

    def _check(self, block: int) -> None:
        if not 0 <= block < self.nblocks:
            raise ValueError(f"block {block} out of range "
                             f"[0, {self.nblocks})")

    def read_block(self, block: int) -> bytes:
        """Read one block (charges seek/transfer costs)."""
        self._check(block)
        self._charge(block)
        self.reads += 1
        data = self._blocks.get(block)
        if data is None:
            return bytes(self.block_size)
        return data

    def write_block(self, block: int, data: bytes) -> None:
        """Write one block (charges seek/transfer costs)."""
        self._check(block)
        if len(data) > self.block_size:
            raise ValueError("data larger than a block")
        self._charge(block)
        self.writes += 1
        if len(data) < self.block_size:
            data = bytes(data) + bytes(self.block_size - len(data))
        self._blocks[block] = bytes(data)

    def __repr__(self) -> str:
        return (f"SimDisk({self.nblocks}x{self.block_size}B, "
                f"reads={self.reads}, writes={self.writes})")
