"""A small 4.3bsd-flavoured filesystem substrate."""

from repro.fs.buffer_cache import BufferCache
from repro.fs.disk import SimDisk
from repro.fs.filesystem import FileSystem
from repro.fs.inode import Inode

__all__ = ["BufferCache", "FileSystem", "Inode", "SimDisk"]
