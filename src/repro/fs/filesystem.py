"""A small 4.3bsd-flavoured filesystem.

Provides exactly what the evaluation workloads need:

* path -> inode lookup and file creation;
* ``read``/``write`` through the buffer cache — the traditional UNIX
  file I/O path the baseline systems use (per-syscall block lookups and
  a byte copy out of the buffer);
* ``read_direct`` — block reads that bypass the buffer cache, used by
  the Mach inode/vnode pager to fill memory-object pages ("The current
  inode pager utilizes 4.3bsd UNIX file systems and eliminates the
  traditional Berkeley UNIX need for separate paging partitions").
"""

from __future__ import annotations

from typing import Optional

from repro.fs.buffer_cache import BufferCache
from repro.fs.disk import SimDisk
from repro.fs.inode import Inode


class FileSystem:
    """Files, a block allocator, and the buffer cache."""

    def __init__(self, machine, nblocks: int = 16384,
                 block_size: int = 8192, nbufs: int = 400) -> None:
        self.machine = machine
        self.disk = SimDisk(machine, nblocks=nblocks,
                            block_size=block_size)
        self.buffer_cache = BufferCache(self.disk, nbufs=nbufs)
        self._files: dict[str, Inode] = {}
        self._next_free_block = 0

    @property
    def block_size(self) -> int:
        """The filesystem's block size in bytes."""
        return self.disk.block_size

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------

    def create(self, path: str) -> Inode:
        """Create an empty file; error if it exists."""
        if path in self._files:
            raise FileExistsError(path)
        inode = Inode()
        self._files[path] = inode
        return inode

    def lookup(self, path: str) -> Inode:
        """Resolve a path to its inode."""
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def exists(self, path: str) -> bool:
        """True when the path names a file."""
        return path in self._files

    def unlink(self, path: str) -> None:
        """Remove a file from the namespace."""
        inode = self.lookup(path)
        del self._files[path]
        inode.link_count -= 1
        if inode.link_count == 0:
            inode.blocks.clear()
            inode.size = 0

    def paths(self) -> list[str]:
        """All file paths, sorted."""
        return sorted(self._files)

    # ------------------------------------------------------------------
    # Block allocation
    # ------------------------------------------------------------------

    def _allocate_block(self) -> int:
        if self._next_free_block >= self.disk.nblocks:
            raise OSError("filesystem full")
        block = self._next_free_block
        self._next_free_block += 1
        return block

    def _extend_to(self, inode: Inode, size: int) -> None:
        needed = (size + self.block_size - 1) // self.block_size
        while len(inode.blocks) < needed:
            inode.blocks.append(self._allocate_block())
        inode.size = max(inode.size, size)

    # ------------------------------------------------------------------
    # Buffer-cache I/O (the traditional UNIX read/write path)
    # ------------------------------------------------------------------

    def write(self, path: str, data: bytes, offset: int = 0,
              create: bool = True) -> None:
        """Write through the buffer cache (creating the file if
        needed)."""
        if not self.exists(path):
            if not create:
                raise FileNotFoundError(path)
            self.create(path)
        inode = self.lookup(path)
        self._extend_to(inode, offset + len(data))
        bs = self.block_size
        cursor = offset
        remaining = data
        while remaining:
            block = inode.bmap(cursor, bs)
            in_block = cursor % bs
            chunk = remaining[:bs - in_block]
            if len(chunk) < bs:
                merged = bytearray(self.buffer_cache.read(block))
                merged[in_block:in_block + len(chunk)] = chunk
                self.buffer_cache.write(block, bytes(merged))
            else:
                self.buffer_cache.write(block, chunk)
            cursor += len(chunk)
            remaining = remaining[len(chunk):]

    def read(self, path: str, offset: int = 0,
             size: Optional[int] = None) -> bytes:
        """Read through the buffer cache."""
        inode = self.lookup(path)
        if size is None:
            size = inode.size - offset
        size = max(0, min(size, inode.size - offset))
        bs = self.block_size
        out = bytearray()
        cursor = offset
        while len(out) < size:
            block = inode.bmap(cursor, bs)
            data = self.buffer_cache.read(block)
            in_block = cursor % bs
            take = min(bs - in_block, size - len(out))
            out += data[in_block:in_block + take]
            cursor += take
        return bytes(out)

    # ------------------------------------------------------------------
    # Direct I/O (the Mach inode-pager path: no buffer-cache pollution)
    # ------------------------------------------------------------------

    def read_direct(self, inode: Inode, offset: int, size: int) -> bytes:
        """Read raw blocks for a pager fill, bypassing the buffer
        cache."""
        size = max(0, min(size, inode.size - offset))
        bs = self.block_size
        out = bytearray()
        cursor = offset
        while len(out) < size:
            block = inode.bmap(cursor, bs)
            data = self.buffer_cache.peek_dirty(block)
            if data is None:
                #: no-retry — direct reads feed pager data_request,
                #: which the kernel's _call_pager funnel retries.
                data = self.disk.read_block(block)
            in_block = cursor % bs
            take = min(bs - in_block, size - len(out))
            out += data[in_block:in_block + take]
            cursor += take
        return bytes(out)

    def write_direct(self, inode: Inode, offset: int,
                     data: bytes) -> None:
        """Write raw blocks for a pager cleaning pass."""
        self._extend_to(inode, offset + len(data))
        bs = self.block_size
        cursor = offset
        remaining = data
        while remaining:
            block = inode.bmap(cursor, bs)
            in_block = cursor % bs
            chunk = remaining[:bs - in_block]
            # write_direct serves pager data_write: a DiskIOError keeps
            # the page dirty upstream and the kernel's _call_pager
            # funnel retries the whole pageout, so no retry here.
            if len(chunk) < bs:
                merged = bytearray(
                    self.buffer_cache.peek_dirty(block)
                    or self.disk.read_block(block))  #: no-retry (funnel)
                merged[in_block:in_block + len(chunk)] = chunk
                #: no-retry — pageout retried by the kernel funnel.
                self.disk.write_block(block, bytes(merged))
            else:
                #: no-retry — pageout retried by the kernel funnel.
                self.disk.write_block(block, chunk)
            # The direct write bypassed the buffer cache: drop any
            # (now stale) cached copy so future reads see the disk.
            self.buffer_cache.drop_block(block)
            cursor += len(chunk)
            remaining = remaining[len(chunk):]

    def __repr__(self) -> str:
        return (f"FileSystem({len(self._files)} files, "
                f"{self._next_free_block}/{self.disk.nblocks} blocks)")
