"""UNIX 4.3bsd emulation on the Mach kernel."""

from repro.unix.process import Program, UnixProcess, UnixSystem

__all__ = ["Program", "UnixProcess", "UnixSystem"]
