"""UNIX 4.3bsd emulation on the Mach kernel.

Section 2: "Mach provides complete UNIX 4.3bsd compatibility ... The
UNIX notion of a process is, in Mach, represented by a task with a
single thread of control."  Section 2.1 describes fork: "the newly
created child task address map is created based on the parent's
inheritance values.  By default, all inheritance values for an address
space are set to copy.  Thus the child's address space is, by default, a
copy-on-write copy of the parent's."

This module provides processes with the classic five-region layout the
paper mentions ("A typical VAX UNIX process has five mapping entries
upon creation — one for its UNIX u-area and one each for code, stack,
initialized and uninitialized data"), ``fork``/``exec``/``exit``, and
file I/O implemented the Mach way — through memory objects and the
object cache, not a fixed buffer pool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.core.constants import VMProt, round_page
from repro.core.kernel import MachKernel
from repro.core.task import Task
from repro.fs.filesystem import FileSystem
from repro.pager.vnode_pager import vnode_pager_for

_pids = itertools.count(2)  # pid 1 is init


@dataclass(frozen=True)
class Program:
    """An executable: path plus segment sizes (bytes)."""

    path: str
    text_size: int
    data_size: int
    bss_size: int = 0

    @property
    def image_size(self) -> int:
        """Bytes of the on-disk image (text + initialized data)."""
        return self.text_size + self.data_size


class UnixProcess:
    """A task with a single thread and the five-region UNIX layout."""

    def __init__(self, system: "UnixSystem", task: Task,
                 name: str = "") -> None:
        self.system = system
        self.task = task
        self.pid = next(_pids)
        self.name = name or f"pid{self.pid}"
        #: region name -> (address, size); the five classic regions.
        self.regions: dict[str, tuple[int, int]] = {}
        self.program: Optional[Program] = None
        self.exited = False
        self.children: list["UnixProcess"] = []

    # -- memory regions -----------------------------------------------------

    def region(self, name: str) -> tuple[int, int]:
        """The (address, size) of a named region."""
        return self.regions[name]

    def data_address(self) -> int:
        """Base address of the initialized data region."""
        return self.regions["data"][0]

    def stack_address(self) -> int:
        """Base address of the stack region."""
        return self.regions["stack"][0]

    # -- process lifecycle ---------------------------------------------------

    def fork(self) -> "UnixProcess":
        """COW fork: the Mach task fork plus u-area setup."""
        child_task = self.task.fork(name=f"{self.name}-child")
        child = UnixProcess(self.system, child_task)
        child.regions = dict(self.regions)
        child.program = self.program
        self.children.append(child)
        # The u-area is kernel per-process state, copied eagerly; touch
        # it in the child so the copy really happens.
        if "u_area" in child.regions:
            addr, _ = child.regions["u_area"]
            child_task.write(addr, self.task.read(addr, 64))
        return child

    def exec(self, program: Program) -> None:
        """Replace the address space with *program*'s image.

        Text is mapped shared read-only/execute from the file (and
        cached, so re-execs find it resident); initialized data is a
        copy-on-write mapping of the file image; bss, heap and stack are
        fresh zero-fill memory.
        """
        kernel = self.system.kernel
        for address, size in self.regions.values():
            self.task.vm_deallocate(address, size)
        self.regions.clear()
        self.system._build_image(self, program)
        self.program = program

    def exit(self) -> None:
        """Terminate the process and reap its resources."""
        if self.exited:
            return
        self.exited = True
        self.task.terminate()
        if self in self.system.processes:
            self.system.processes.remove(self)

    def wait(self) -> list["UnixProcess"]:
        """Reap exited children."""
        done = [c for c in self.children if c.exited]
        self.children = [c for c in self.children if not c.exited]
        return done

    # -- file I/O (the Mach path: through memory objects) --------------------

    def read_file(self, path: str, size: Optional[int] = None) -> bytes:
        """Read a file the way this system's kernel does."""
        return self.system.read_file(self, path, size)

    def write_file(self, path: str, data: bytes, offset: int = 0,
                   sync: bool = False) -> None:
        """Write a file the way this system's kernel does."""
        self.system.write_file(self, path, data, offset, sync=sync)

    def __repr__(self) -> str:
        prog = self.program.path if self.program else "-"
        return f"UnixProcess(pid={self.pid}, {self.name}, prog={prog})"


class UnixSystem:
    """The 4.3bsd personality: processes, programs and file I/O on one
    Mach kernel."""

    #: Base of the text segment (clear of page-zero for any page size).
    TEXT_BASE = 0x0004_0000
    #: Default stack reservation.
    STACK_SIZE = 64 * 1024

    def __init__(self, kernel: MachKernel, fs: FileSystem) -> None:
        self.kernel = kernel
        self.fs = fs
        self.processes: list[UnixProcess] = []
        self.reads_issued = 0

    @property
    def page_size(self) -> int:
        """The boot-time Mach page size in bytes."""
        return self.kernel.page_size

    # ------------------------------------------------------------------
    # Programs
    # ------------------------------------------------------------------

    def install_program(self, path: str, text_size: int, data_size: int,
                        bss_size: int = 0) -> Program:
        """Write an executable image into the filesystem."""
        program = Program(path, round_page(text_size, self.page_size),
                          round_page(data_size, self.page_size),
                          round_page(bss_size, self.page_size))
        image = bytearray(program.image_size)
        # Recognizable non-zero content so COW/data tests can check it.
        for i in range(0, len(image), 512):
            image[i] = (i // 512) % 255 + 1
        self.fs.write(path, bytes(image))
        return program

    def _build_image(self, proc: UnixProcess, program: Program) -> None:
        kernel = self.kernel
        task = proc.task
        page = self.page_size

        # Text: shared, read/execute, from the file's memory object
        # (kept in the object cache across execs, like "UNIX text
        # segments or other frequently used files").
        pager = vnode_pager_for(self.fs, program.path, cache=True)
        if program.text_size:
            kernel.vm_allocate_with_pager(
                task, program.text_size, pager, offset=0,
                address=self.TEXT_BASE, anywhere=False)
            task.vm_protect(self.TEXT_BASE, program.text_size, True,
                            VMProt.READ | VMProt.EXECUTE)
            task.vm_protect(self.TEXT_BASE, program.text_size, False,
                            VMProt.READ | VMProt.EXECUTE)
            proc.regions["text"] = (self.TEXT_BASE, program.text_size)

        # Initialized data: copy-on-write from the file image.
        data_base = round_page(self.TEXT_BASE + program.text_size, page)
        if program.data_size:
            obj = kernel.vm.objects.create_for_pager(
                pager, program.image_size)
            try:
                kernel._pager_init(pager, obj)
                task.vm_map.allocate(
                    program.data_size, address=data_base, anywhere=False,
                    vm_object=obj, offset=program.text_size,
                    needs_copy=True)
            except Exception:
                # Failed init/allocate: drop the manager's reference
                # so the half-built image does not pin the object.
                kernel.vm.objects.deallocate(obj)
                raise
            proc.regions["data"] = (data_base, program.data_size)

        # Uninitialized data (bss): zero fill.
        bss_base = round_page(data_base + program.data_size, page)
        bss_size = program.bss_size or page
        task.vm_allocate(bss_size, address=bss_base, anywhere=False)
        proc.regions["bss"] = (bss_base, bss_size)

        # Stack: zero fill, just below the top of the address space.
        stack_top = kernel.spec.va_limit - page
        stack_base = stack_top - self.STACK_SIZE
        task.vm_allocate(self.STACK_SIZE, address=stack_base,
                         anywhere=False)
        proc.regions["stack"] = (stack_base, self.STACK_SIZE)

        # u-area: one wired page below the stack.
        u_base = stack_base - page
        task.vm_allocate(page, address=u_base, anywhere=False)
        kernel.wire_range(proc.task, u_base, page)
        proc.regions["u_area"] = (u_base, page)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def create_process(self, program: Optional[Program] = None,
                       name: str = "") -> UnixProcess:
        """Create a new process (optionally exec'ing a program)."""
        task = self.kernel.task_create(name=name or "unix")
        proc = UnixProcess(self, task, name=name)
        self.processes.append(proc)
        if program is not None:
            self._build_image(proc, program)
            proc.program = program
        else:
            # A bare process still has a u-area and stack.
            page = self.page_size
            stack_top = self.kernel.spec.va_limit - page
            stack_base = stack_top - self.STACK_SIZE
            task.vm_allocate(self.STACK_SIZE, address=stack_base,
                             anywhere=False)
            proc.regions["stack"] = (stack_base, self.STACK_SIZE)
            u_base = stack_base - page
            task.vm_allocate(page, address=u_base, anywhere=False)
            proc.regions["u_area"] = (u_base, page)
        return proc

    # ------------------------------------------------------------------
    # File I/O through memory objects (the Mach read/write path)
    # ------------------------------------------------------------------

    def _file_object(self, path: str):
        """The (possibly cached) memory object for a file; caller must
        deallocate the returned reference."""
        pager = vnode_pager_for(self.fs, path, cache=True)
        inode = self.fs.lookup(path)
        obj = self.kernel.vm.objects.create_for_pager(
            pager, round_page(max(inode.size, 1), self.page_size))
        try:
            self.kernel._pager_init(pager, obj)
        except Exception:
            # The caller never saw the reference; drop it here.
            self.kernel.vm.objects.deallocate(obj)
            raise
        return obj, inode

    def read_file(self, proc: UnixProcess, path: str,
                  size: Optional[int] = None) -> bytes:
        """UNIX ``read`` as Mach implements it: pages come from the
        file's memory object (hitting the object cache when warm), then
        are copied out to the caller."""
        kernel = self.kernel
        costs = kernel.machine.costs
        obj, inode = self._file_object(path)
        if size is None:
            size = inode.size
        size = min(size, inode.size)
        out = bytearray()
        page = self.page_size
        try:
            offset = 0
            while offset < size:
                kernel.clock.charge(costs.syscall_us)
                self.reads_issued += 1
                vm_page = kernel.vm.resident.lookup(obj, offset)
                if vm_page is None:
                    vm_page = kernel.request_object_data(obj, offset)
                    if vm_page is not None:
                        kernel.stats.pageins += 1
                if vm_page is None:
                    # Hole (sparse file): zeros.
                    chunk = bytes(min(page, size - offset))
                else:
                    vm_page.busy = False
                    vm_page.referenced = True
                    kernel.vm.resident.activate(vm_page)
                    take = min(page, size - offset)
                    chunk = kernel.machine.physmem.read(
                        vm_page.phys_addr, take)
                kernel.clock.charge(costs.byte_copy_cost(len(chunk)))
                out += chunk
                offset += page
        finally:
            kernel.vm.objects.deallocate(obj)
        return bytes(out[:size])

    def write_file(self, proc: UnixProcess, path: str, data: bytes,
                   offset: int = 0, sync: bool = False) -> None:
        """UNIX ``write`` through the file's memory object: pages are
        modified in the object, staying coherent with any mappings and
        with subsequent reads.  Dirty pages reach the disk when the
        paging daemon launders them (or immediately with ``sync``) —
        there is no fixed buffer pool to write back through."""
        kernel = self.kernel
        costs = kernel.machine.costs
        if not self.fs.exists(path):
            self.fs.create(path)
        inode = self.fs.lookup(path)
        prior_size = inode.size
        self.fs._extend_to(inode, offset + len(data))
        obj, inode = self._file_object(path)
        page = self.page_size
        try:
            cursor = offset
            remaining = data
            while remaining:
                kernel.clock.charge(costs.syscall_us)
                page_off = cursor - cursor % page
                in_page = cursor - page_off
                chunk = remaining[:page - in_page]
                vm_page = kernel.vm.resident.lookup(obj, page_off)
                full_overwrite = in_page == 0 and len(chunk) == page
                if (vm_page is None and not full_overwrite
                        and page_off < prior_size):
                    # Partial write over pre-existing data: fetch it.
                    vm_page = kernel.request_object_data(obj, page_off)
                if vm_page is None:
                    vm_page = kernel.vm.resident.allocate(
                        obj, page_off, busy=True)
                    try:
                        kernel.vm.pmap_system.zero_page(vm_page.phys_addr)
                    except Exception:
                        # Do not strand the busy page off every queue.
                        kernel.vm.resident.free(vm_page)
                        raise
                vm_page.busy = False
                # Queue the page before touching its contents: if the
                # copy below fails, the page is still reclaimable.
                kernel.vm.resident.activate(vm_page)
                kernel.clock.charge(costs.byte_copy_cost(len(chunk)))
                kernel.machine.physmem.write(
                    vm_page.phys_addr + in_page, chunk)
                vm_page.modified = True
                cursor += len(chunk)
                remaining = remaining[len(chunk):]
            if sync:
                kernel.clean_object(obj, 0, obj.size)
        finally:
            kernel.vm.objects.deallocate(obj)

    def fsync(self, path: str) -> None:
        """Force a file's dirty object pages out to the filesystem."""
        obj, _ = self._file_object(path)
        try:
            self.kernel.clean_object(obj, 0, obj.size)
        finally:
            self.kernel.vm.objects.deallocate(obj)
