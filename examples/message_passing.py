#!/usr/bin/env python3
"""Memory/IPC integration: sending large data by copy-on-write remap.

"The key to efficiency in Mach is the notion that virtual memory
management can be integrated with a message-oriented communication
facility.  This integration allows large amounts of data including whole
files and even whole address spaces to be sent in a single message with
the efficiency of simple memory remapping."  (Section 2)

This example builds a producer/consumer pipeline over a port, sends a
16 MB region out-of-line, shows that the transfer cost is page-table
work rather than byte copying, demonstrates the snapshot semantics, and
finishes by sending a task's entire address space in one message.

Run:  python examples/message_passing.py
"""

from repro import MachKernel, hw
from repro.ipc import Message, MsgType, Port

MB = 1 << 20
PAGE = 4096


def main() -> None:
    kernel = MachKernel(hw.VAX_8650)
    producer = kernel.task_create(name="producer")
    consumer = kernel.task_create(name="consumer")
    pipe = Port(name="pipeline")

    # --- a 16 MB out-of-line transfer -----------------------------------
    size = 16 * MB
    buf = producer.vm_allocate(size)
    for off in range(0, size, PAGE):
        producer.write(buf + off, b"payload!")
    print(f"producer dirtied {size // MB} MB")

    snap = kernel.clock.snapshot()
    message = Message(msgh_id=100)
    message.add_inline(MsgType.STRING, "bulk-data")
    message.add_ool(buf, size)
    kernel.msg_send(producer, pipe, message)
    received = kernel.msg_receive(consumer, pipe)
    remap_ms = snap.cpu_interval_ms()

    copy_ms = kernel.machine.costs.byte_copy_cost(size) / 1000
    print(f"send+receive by COW remap: {remap_ms:8.2f} ms (simulated)")
    print(f"the same data by byte copy:{copy_ms:8.0f} ms "
          f"({copy_ms / remap_ms:.0f}x more)")

    dst = received.ool[0].received_at
    print(f"consumer reads the data at {dst:#x}: "
          f"{consumer.read(dst, 8)!r}")

    # --- snapshot semantics ----------------------------------------------
    producer.write(buf, b"AFTERWRD")
    print(f"\nproducer scribbles after the send; consumer still sees "
          f"{consumer.read(dst, 8)!r} (snapshot at send time)")

    # --- lazy evaluation ---------------------------------------------------
    before = kernel.stats.cow_faults
    consumer.write(dst, b"consumer")
    print(f"consumer's first write triggers the only real page copy "
          f"(cow faults: {before} -> {kernel.stats.cow_faults})")

    # --- a whole address space in one message -----------------------------
    print("\nsending the producer's entire address space in one "
          "message:")
    everything = Message(msgh_id=101)
    for region in producer.vm_regions():
        everything.add_ool(region.start, region.size)
    snap = kernel.clock.snapshot()
    kernel.msg_send(producer, pipe, everything)
    got = kernel.msg_receive(consumer, pipe)
    print(f"  {len(got.ool)} region(s), {sum(r.size for r in got.ool) // MB} MB total, "
          f"{snap.cpu_interval_ms():.2f} ms simulated")
    print(f"  messages through the port so far: {pipe.messages_sent}")


if __name__ == "__main__":
    main()
