#!/usr/bin/env python3
"""Analyzing a workload with the kernel tracer.

Attaches :class:`repro.trace.KernelTracer` to a memory-starved machine,
runs a fork/COW/paging workload, and breaks down every fault, pageout
and TLB shootdown the kernel performed — the observability story for
the reproduction.

Run:  python examples/workload_analysis.py
"""

from repro.core.kernel import MachKernel
from repro.hw.machine import MachineSpec
from repro.trace import KernelTracer

PAGE = 4096

SPEC = MachineSpec(
    name="starved-box",
    hw_page_size=PAGE,
    default_page_size=PAGE,
    va_limit=1 << 30,
    ncpus=2,
    pmap_name="generic",
    memory_segments=((0, 32 * PAGE),),     # only 32 frames
)


def workload(kernel: MachKernel) -> None:
    parent = kernel.task_create(name="builder")
    addr = parent.vm_allocate(24 * PAGE)
    for off in range(0, 24 * PAGE, PAGE):
        parent.write(addr + off, b"base data")

    for generation in range(3):
        child = parent.fork()
        for off in range(0, 24 * PAGE, 2 * PAGE):
            child.write(addr + off, f"gen{generation}".encode())
        for off in range(0, 24 * PAGE, PAGE):
            child.read(addr + off, 4)
        child.terminate()


def main() -> None:
    kernel = MachKernel(SPEC)
    tracer = KernelTracer(kernel)
    with tracer:
        workload(kernel)

    print("workload ran on a 32-frame machine; here is everything the "
          "kernel did:\n")
    print(tracer.summary())

    print("\nfirst ten events:")
    for event in tracer.events[:10]:
        print(f"  {event}")

    pageouts = [e for e in tracer.events if e.kind == "pageout"]
    if pageouts:
        print(f"\nfirst pageout happened at "
              f"{pageouts[0].timestamp_us / 1000:.2f} ms simulated — "
              f"the working set outgrew memory there.")

    cow = [e for e in tracer.events if "cow-copy" in e.detail]
    print(f"\n{len(cow)} copy-on-write copies across 3 fork "
          f"generations; each is one page actually copied, everything "
          f"else was shared.")
    print(f"\nfinal statistics: {kernel.stats!r}")


if __name__ == "__main__":
    main()
