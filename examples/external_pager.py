#!/usr/bin/env python3
"""External pagers: user-state backing store over real messages.

Section 3.3 of the paper: memory-object page faults and page-outs can be
"performed directly by user-state tasks for memory objects they create."
This example builds a small versioned key-value store whose pages live
in a *user-state pager task*, not the kernel:

* page faults turn into ``pager_data_request`` messages on the object's
  paging_object port (Table 3-1);
* the pager answers with ``pager_data_provided`` on the
  paging_object_request port (Table 3-2);
* page-outs arrive as ``pager_data_write`` messages;
* the pager uses ``pager_cache`` to keep its object warm, and
  ``pager_flush_request`` to invalidate stale cached pages after it
  mutates its own store.

Run:  python examples/external_pager.py
"""

from repro import MachKernel, hw
from repro.pager import ExternalPager, ExternalPagerAdapter

PAGE = 4096


class VersionedStorePager(ExternalPager):
    """A user-state pager whose backing store is a dict of versioned
    records, rendered into pages on demand."""

    def __init__(self, nrecords: int = 64) -> None:
        self.records = {i: f"record-{i:04d}:v1".encode()
                        for i in range(nrecords)}
        self.requests_served = 0
        self.pageouts_accepted = 0
        self._adapter = None      # set after adapter construction

    # -- rendering records <-> pages ---------------------------------------

    RECORD_BYTES = 64

    def _render_page(self, offset: int) -> bytes:
        page = bytearray(PAGE)
        first = offset // self.RECORD_BYTES
        for i in range(PAGE // self.RECORD_BYTES):
            data = self.records.get(first + i, b"")
            base = i * self.RECORD_BYTES
            page[base:base + len(data)] = data
        return bytes(page)

    def _absorb_page(self, offset: int, data: bytes) -> None:
        first = offset // self.RECORD_BYTES
        for i in range(len(data) // self.RECORD_BYTES):
            chunk = data[i * self.RECORD_BYTES:
                         (i + 1) * self.RECORD_BYTES]
            record = chunk.rstrip(b"\x00")
            if record:
                self.records[first + i] = record

    # -- Table 3-1 handlers ---------------------------------------------------

    def pager_init(self, kernel_if, obj, name_port) -> None:
        print(f"  [pager] pager_init for object, name port "
              f"{name_port.name}")
        kernel_if.pager_cache(True)      # keep our object cached

    def pager_data_request(self, kernel_if, obj, offset, length,
                           desired_access) -> None:
        self.requests_served += 1
        print(f"  [pager] pager_data_request(offset={offset:#x}, "
              f"length={length})")
        kernel_if.pager_data_provided(offset, self._render_page(offset))

    def pager_data_write(self, kernel_if, obj, offset, data) -> None:
        self.pageouts_accepted += 1
        print(f"  [pager] pager_data_write(offset={offset:#x}, "
              f"{len(data)} bytes)")
        self._absorb_page(offset, data)

    # -- server-side mutation -----------------------------------------------

    def server_side_update(self, record: int, value: bytes) -> None:
        """Mutate the store behind the kernel's back, then flush the
        stale cached page (Table 3-2 pager_flush_request)."""
        self.records[record] = value
        offset = (record * self.RECORD_BYTES) // PAGE * PAGE
        self._adapter.kernel_if.pager_flush_request(offset, PAGE)
        self._adapter._pump()


def main() -> None:
    kernel = MachKernel(hw.VAX_8200)
    task = kernel.task_create(name="client")

    pager = VersionedStorePager()
    adapter = ExternalPagerAdapter(pager, kernel=kernel,
                                   name="kvstore")
    pager._adapter = adapter

    print("mapping the user-state store into the client task "
          "(vm_allocate_with_pager):")
    addr = task.vm_allocate_with_pager(4 * PAGE, adapter)

    print("\nfirst touch faults through the message protocol:")
    print(f"  client reads record 0: "
          f"{task.read(addr, 14).rstrip(chr(0).encode())!r}")
    print(f"  client reads record 70 (second page): "
          f"{task.read(addr + 70 * 64, 15)!r}")

    print("\nclient writes records through plain memory stores:")
    task.write(addr + 5 * 64, b"record-0005:v2-from-client")
    print("  (no pager traffic yet - the dirty page is cached)")

    print("\nmemory pressure pushes the dirty page back to the pager:")
    kernel.pageout_daemon.run(
        target=kernel.vm.resident.physmem.total_frames)
    print(f"  pager's store now has: {pager.records[5]!r}")

    print("\nserver-side update + pager_flush_request invalidates the "
          "kernel's cache:")
    pager.server_side_update(0, b"record-0000:v9-server-side")
    print(f"  client re-reads record 0: {task.read(addr, 26)!r}")

    print(f"\ntotals: {pager.requests_served} data requests, "
          f"{pager.pageouts_accepted} pageouts, "
          f"{adapter.pager_port.messages_sent} messages to the pager, "
          f"{adapter.request_port.messages_sent} messages back")


if __name__ == "__main__":
    main()
