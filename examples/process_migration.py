#!/usr/bin/env python3
"""Copy-on-reference process migration between two machines.

Section 6 of the paper: Mach's pagers "can be implemented ... anywhere
on the network", enabling "shared copy-on-reference" data — the
process-migration technique of reference [13] (Zayas).  This example
migrates a task from a MicroVAX to a SUN 3 **without copying its
address space**: pages cross the (simulated) network only when the
migrated task touches them.

Run:  python examples/process_migration.py
"""

from repro import MachKernel, hw
from repro.dist import NetworkLink, finalize_migration, migrate_task

KB = 1024
PAGE = 4096


def main() -> None:
    source = MachKernel(hw.MICROVAX_II)
    dest = MachKernel(hw.IBM_RP3)       # same 4 KB page size
    print(f"source: {source.spec.name}   dest: {dest.spec.name}")

    # A task with a 1 MB working set, partly dirty.
    victim = source.task_create(name="victim")
    addr = victim.vm_allocate(1024 * KB)
    for off in range(0, 1024 * KB, PAGE):
        victim.write(addr + off, f"page@{off:#x}".encode())
    print(f"victim task has {1024 // 4} dirty pages on the source\n")

    link = NetworkLink(latency_us=1500.0, bandwidth_us_per_kb=300.0)
    migration = migrate_task(source, victim, dest, link)
    print("migrated (copy-on-reference):")
    print(f"  bytes moved so far: {link.bytes_moved} "
          f"(the address space moved by reference, not by copy)")

    ghost = migration.dest_task
    print("\nthe migrated task touches a few pages on the new "
          "machine:")
    for off in (0, 256 * KB, 512 * KB):
        data = ghost.read(addr + off, 12)
        print(f"  read {data!r:24} -> pulled page over the network")
    print(f"  pages pulled: {migration.pages_pulled}, bytes moved: "
          f"{link.bytes_moved}")

    print("\nit writes; the dirty page flows back to the master copy "
          "on pageout:")
    ghost.write(addr, b"dirty-on-dest")
    dest.pageout_daemon.run(
        target=dest.vm.resident.physmem.total_frames)
    print(f"  source now reads: {victim.read(addr, 13)!r}")

    print("\nfinalizing (severing the link):")
    moved = finalize_migration(migration)
    print(f"  {moved} remaining pages pushed across eagerly")
    victim.terminate()
    print("  source task terminated; destination is self-contained:")
    print(f"  ghost reads {ghost.read(addr + 768 * KB, 12)!r}")
    print(f"\nnetwork totals: {link.messages} messages, "
          f"{link.bytes_moved // 1024} KB")


if __name__ == "__main__":
    main()
