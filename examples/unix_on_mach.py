#!/usr/bin/env python3
"""UNIX on Mach: processes, mapped files and the object cache.

Recreates the paper's motivating workload in miniature: a shell forks
compiler processes that exec a program, read sources and headers, and
write objects — with the Mach mechanisms (COW fork, shared mapped text,
the memory-object file cache) visibly doing the work.  The same workload
then runs on the traditional 4.3bsd baseline for contrast, previewing
Table 7-2.

Run:  python examples/unix_on_mach.py
"""

from repro import MachKernel, hw
from repro.baseline import BsdVmSystem
from repro.fs import FileSystem
from repro.hw.machine import Machine
from repro.unix import UnixSystem

KB = 1024


def mach_run() -> float:
    kernel = MachKernel(hw.VAX_8650)
    fs = FileSystem(kernel.machine, nbufs=64)
    ux = UnixSystem(kernel, fs)

    cc = ux.install_program("/bin/cc", text_size=256 * KB,
                            data_size=64 * KB, bss_size=32 * KB)
    fs.write("/usr/include/stdio.h", b"#define EOF (-1)\n" * 2000)
    for unit in range(4):
        fs.write(f"/src/u{unit}.c", b"int main(){return 0;}\n" * 500)
    fs.buffer_cache.sync()
    fs.buffer_cache.invalidate()

    shell = ux.create_process(name="sh")
    snap = kernel.clock.snapshot()
    for unit in range(4):
        compiler = shell.fork()
        compiler.exec(cc)
        compiler.read_file("/usr/include/stdio.h")
        compiler.read_file(f"/src/u{unit}.c")
        da, ds = compiler.regions["bss"]
        compiler.task.write(da, b"compiling...")
        compiler.write_file(f"/obj/u{unit}.o", b"\x7fOBJ" * 2000)
        compiler.exit()
    elapsed = snap.elapsed_interval_ms()

    stats = kernel.vm_statistics()
    print("Mach run:")
    print(f"  4 compiles in {elapsed / 1000:.2f} s simulated")
    print(f"  faults {stats.faults}, cow {stats.cow_faults}, "
          f"pageins {stats.pageins}")
    print(f"  object cache hits {stats.object_cache_hits} "
          f"(text + headers reused across execs)")
    print(f"  disk reads {fs.disk.reads} "
          f"(cc text read once, mapped thereafter)")
    return elapsed


def bsd_run() -> float:
    machine = Machine(hw.VAX_8650)
    fs = FileSystem(machine, nbufs=64)
    bsd = BsdVmSystem(machine, fs)

    from repro.unix import Program
    cc = Program("/bin/cc", 256 * KB, 64 * KB, 32 * KB)
    fs.write("/bin/cc", bytes(cc.image_size))
    fs.write("/usr/include/stdio.h", b"#define EOF (-1)\n" * 2000)
    for unit in range(4):
        fs.write(f"/src/u{unit}.c", b"int main(){return 0;}\n" * 500)
    fs.buffer_cache.sync()
    fs.buffer_cache.invalidate()

    shell = bsd.create_process(name="sh")
    snap = machine.clock.snapshot()
    for unit in range(4):
        compiler = shell.fork()
        compiler.exec(cc)
        compiler.read_file("/usr/include/stdio.h")
        compiler.read_file(f"/src/u{unit}.c")
        compiler.write("bss", 0, b"compiling...")
        compiler.write_file(f"/obj/u{unit}.o", b"\x7fOBJ" * 2000)
        compiler.exit()
    elapsed = snap.elapsed_interval_ms()

    print("4.3bsd baseline run:")
    print(f"  4 compiles in {elapsed / 1000:.2f} s simulated")
    print(f"  faults {bsd.faults}, zero-fills {bsd.zero_fills}")
    print(f"  disk reads {fs.disk.reads} "
          f"(cc image re-read through the small buffer cache)")
    return elapsed


def main() -> None:
    mach_ms = mach_run()
    print()
    bsd_ms = bsd_run()
    print(f"\nMach / 4.3bsd elapsed ratio: "
          f"{mach_ms / bsd_ms:.2f} (Table 7-2's shape in miniature)")


if __name__ == "__main__":
    main()
