#!/usr/bin/env python3
"""Multiprocessor shared memory and TLB consistency (Section 5.2).

An 8-CPU Encore Multimax (NS32082 MMUs, no hardware TLB coherence)
runs a task whose threads share memory across CPUs.  The example shows

* read/write sharing across processors,
* the stale-TLB hazard when a mapping changes,
* and the cost/latency trade of the paper's three shootdown strategies:
  interrupt-everyone, wait-for-timer-tick, and allow-temporary-
  inconsistency.

Run:  python examples/shared_memory_multiprocessor.py
"""

from repro import MachKernel, ShootdownStrategy, VMInherit, VMProt, hw

PAGE = 4096


def demo_sharing() -> None:
    print("=== read/write sharing across CPUs ===")
    kernel = MachKernel(hw.ENCORE_MULTIMAX,
                        shootdown=ShootdownStrategy.IMMEDIATE)
    parent = kernel.task_create(name="coordinator")
    addr = parent.vm_allocate(4 * PAGE)
    parent.vm_inherit(addr, 4 * PAGE, VMInherit.SHARE)
    workers = [parent.fork() for _ in range(3)]

    for cpu_id, worker in enumerate(workers, start=1):
        kernel.set_current_cpu(cpu_id)
        worker.write(addr + cpu_id * 64, f"hello from cpu{cpu_id}"
                     .encode())
    kernel.set_current_cpu(0)
    for cpu_id in range(1, 4):
        print(f"  coordinator reads cpu{cpu_id}'s slot: "
              f"{parent.read(addr + cpu_id * 64, 15)!r}")


def demo_strategies() -> None:
    print("\n=== TLB shootdown strategies under a protect storm ===")
    for strategy in ShootdownStrategy:
        kernel = MachKernel(hw.ENCORE_MULTIMAX, shootdown=strategy)
        task = kernel.task_create()
        addr = task.vm_allocate(8 * PAGE)
        # Spread the task's pmap over four CPUs.
        for cpu_id in range(4):
            kernel.set_current_cpu(cpu_id)
            for off in range(0, 8 * PAGE, PAGE):
                task.write(addr + off, b"x")
        kernel.set_current_cpu(0)
        snap = kernel.clock.snapshot()
        ipis_before = kernel.pmap_system.ipis_sent
        for i in range(16):
            prot = VMProt.READ if i % 2 == 0 else VMProt.DEFAULT
            task.vm_protect(addr, 8 * PAGE, False, prot)
            if strategy is ShootdownStrategy.DEFERRED and i % 8 == 7:
                kernel.machine.tick_all_timers()
        cpu_ms, elapsed_ms = (v / 1000 for v in snap.interval())
        ipis = kernel.pmap_system.ipis_sent - ipis_before
        print(f"  {strategy.value:<9} cpu {cpu_ms:7.2f} ms  "
              f"elapsed {elapsed_ms:7.2f} ms  {ipis:3d} IPIs")
    print("  -> immediate pays IPIs; deferred pays latency; lazy pays "
          "nothing but tolerates staleness")


def demo_hazard() -> None:
    print("\n=== the stale-TLB hazard, made visible (lazy strategy) ===")
    kernel = MachKernel(hw.ENCORE_MULTIMAX,
                        shootdown=ShootdownStrategy.LAZY)
    task = kernel.task_create()
    addr = task.vm_allocate(PAGE)
    for cpu_id in range(2):
        kernel.set_current_cpu(cpu_id)
        task.write(addr, b"warm")
    kernel.set_current_cpu(0)
    task.vm_protect(addr, PAGE, False, VMProt.READ)
    cpu1 = kernel.machine.cpus[1]
    entry = cpu1.tlb.probe(task.pmap, addr)
    print(f"  after vm_protect(READ) from cpu0, cpu1's TLB still says: "
          f"{entry.prot!r}")
    print("  (\"often case (3) is acceptable because the semantics of "
          "the operation being")
    print("   performed do not require or even allow simultaneity\")")


def main() -> None:
    demo_sharing()
    demo_strategies()
    demo_hazard()


if __name__ == "__main__":
    main()
