#!/usr/bin/env python3
"""Porting Mach to a new MMU architecture.

Section 4 of the paper describes the port experience: the IBM RT PC
port's pmap module took "approximately 3 weeks", a Sequent port was
self-hosting in five weeks, and "Machine dependent code has yet to be
modified as the result of support for a new architecture."

This example performs the same exercise on the reproduction: it defines
a brand-new MMU — a two-level page-table design with 4 KB pages, in the
style of the i386 that would appear a year or two later — as a single
pmap class, registers it, boots a machine on it, and runs the standard
workload suite.  Nothing in the machine-independent layer changes.

Run:  python examples/port_to_new_mmu.py
"""

from typing import Optional

from repro import MachKernel, VMInherit, VMProt
from repro.hw.costs import CostModel
from repro.hw.machine import MachineSpec
from repro.pmap import Pmap, register_pmap

KB = 1024
MB = 1 << 20
PAGE = 4 * KB
#: One level-2 table maps 4 MB (1024 PTEs of 4 KB pages).
L2_SPAN = 4 * MB


class I386StylePmap(Pmap):
    """The whole machine-dependent module for the new architecture.

    Only the five single-hardware-page hooks are required; the base
    class supplies pv-table maintenance, Mach-page fan-out, statistics,
    reference counting and TLB shootdown.
    """

    def __init__(self, system, name: str = "") -> None:
        super().__init__(system, name)
        #: page-directory slot -> {vpn -> (frame, prot, wired)}.
        self._directory: dict[int, dict] = {}

    def _locate(self, vaddr: int) -> tuple[int, int]:
        return vaddr // L2_SPAN, vaddr // self.hw_page_size

    def _hw_enter(self, vaddr, paddr, prot, wired) -> None:
        slot, vpn = self._locate(vaddr)
        table = self._directory.setdefault(slot, {})
        if len(table) == 1:       # new table: charge its allocation
            self.machine.clock.charge(
                self.machine.costs.pt_page_alloc_us)
        frame = paddr - (paddr % self.hw_page_size)
        table[vpn] = (frame, prot, wired)

    def _hw_remove(self, vaddr) -> Optional[int]:
        slot, vpn = self._locate(vaddr)
        table = self._directory.get(slot)
        if table is None:
            return None
        entry = table.pop(vpn, None)
        if not table:
            del self._directory[slot]
        return entry[0] if entry else None

    def _hw_protect(self, vaddr, prot) -> bool:
        slot, vpn = self._locate(vaddr)
        table = self._directory.get(slot)
        if table is None or vpn not in table:
            return False
        frame, _, wired = table[vpn]
        table[vpn] = (frame, prot, wired)
        return True

    def _hw_lookup(self, vaddr):
        slot, vpn = self._locate(vaddr)
        table = self._directory.get(slot)
        if table is None:
            return None
        entry = table.get(vpn)
        if entry is None:
            return None
        return entry[0], entry[1]

    def _hw_iter(self, start, end):
        first = start // self.hw_page_size
        last = (end + self.hw_page_size - 1) // self.hw_page_size
        for slot in sorted(self._directory):
            for vpn in sorted(self._directory[slot]):
                if first <= vpn < last:
                    yield vpn * self.hw_page_size


def main() -> None:
    print("registering the new pmap class "
          f"({I386StylePmap.__name__}, one module, five hooks)...")
    register_pmap("i386-style", I386StylePmap, replace=True)

    spec = MachineSpec(
        name="NewBox/386",
        hw_page_size=PAGE,
        default_page_size=PAGE,
        va_limit=1 << 32,
        ncpus=2,
        pmap_name="i386-style",
        tlb_capacity=32,
        memory_segments=((0, 3 * MB),),
        costs=CostModel(),
    )
    kernel = MachKernel(spec)
    print(f"booted {kernel!r}\n")

    print("running the standard machine-independent workload:")
    task = kernel.task_create(name="portability-test")
    addr = task.vm_allocate(64 * KB)
    task.write(addr, b"machine independent")
    child = task.fork()
    child.write(addr, b"COPY-ON-WRITE")
    assert task.read(addr, 7) == b"machine"
    assert child.read(addr, 13) == b"COPY-ON-WRITE"
    print("  copy-on-write fork          OK")

    task.vm_inherit(addr + 32 * KB, 16 * KB, VMInherit.SHARE)
    sharer = task.fork()
    sharer.write(addr + 32 * KB, b"shared")
    assert task.read(addr + 32 * KB, 6) == b"shared"
    print("  read/write sharing          OK")

    task.vm_protect(addr, 4 * KB, False, VMProt.READ)
    try:
        task.write(addr, b"x")
        raise SystemExit("protection failed to hold!")
    except Exception:
        print("  protection enforcement      OK")

    big = task.vm_allocate(4 * MB)
    for off in range(0, 4 * MB, PAGE):
        task.write(big + off, b"pressure")
    print("  paging under pressure       OK "
          f"({kernel.stats.pageouts} pageouts, "
          f"{kernel.stats.pageins} pageins)")

    task.vm_map.check_invariants()
    kernel.vm.resident.check_consistency()
    print("  invariants                  OK")
    print(f"\npmap stats for the new machine: {task.pmap.stats}")
    print("the machine-independent layer was not touched.")


if __name__ == "__main__":
    main()
