#!/usr/bin/env python3
"""Quickstart: boot a simulated machine, run the core Mach VM
mechanisms, and print what happened.

Covers the basics of the public API: booting a kernel on a preset
machine, task creation, the Table 2-1 operations (vm_allocate,
vm_protect, vm_inherit, vm_copy, vm_regions, vm_statistics),
copy-on-write fork, and read/write sharing.

Run:  python examples/quickstart.py
"""

from repro import MachKernel, VMInherit, VMProt, hw

KB = 1024


def main() -> None:
    # Boot on a MicroVAX II: 512-byte hardware pages, lazily built VAX
    # page tables, a 4 KB boot-time Mach page size.
    kernel = MachKernel(hw.MICROVAX_II)
    print(f"booted {kernel!r}")
    print(f"  hardware page {kernel.machine.hw_page_size} B, "
          f"Mach page {kernel.page_size} B")

    # --- a task and some zero-fill memory ------------------------------
    task = kernel.task_create(name="demo")
    addr = task.vm_allocate(64 * KB)
    print(f"\nvm_allocate(64K) -> {addr:#x} "
          f"(nothing faulted in yet: {kernel.stats.faults} faults)")

    task.write(addr, b"The quick brown fox")
    print(f"after first write: {kernel.stats.faults} fault(s), "
          f"{kernel.stats.zero_fill_count} zero-filled page(s)")
    print(f"read back: {task.read(addr, 19)!r}")

    # --- copy-on-write fork ---------------------------------------------
    child = task.fork()
    print(f"\nforked {child.name}; child reads parent's data: "
          f"{child.read(addr, 19)!r}")
    child.write(addr + 4, b"SLOW")
    print("child wrote 'SLOW' over 'quick':")
    print(f"  child  sees {child.read(addr, 19)!r}")
    print(f"  parent sees {task.read(addr, 19)!r}")
    print(f"  copy-on-write faults so far: {kernel.stats.cow_faults}, "
          f"shadow objects created: "
          f"{kernel.vm.objects.shadows_created}")

    # --- read/write sharing via inheritance ------------------------------
    shared = task.vm_allocate(16 * KB)
    task.vm_inherit(shared, 16 * KB, VMInherit.SHARE)
    sharer = task.fork()
    sharer.write(shared, b"written by the child")
    print(f"\nSHARE inheritance: parent sees the child's write: "
          f"{task.read(shared, 20)!r}")

    # --- protection -------------------------------------------------------
    task.vm_protect(addr, 4 * KB, False, VMProt.READ)
    try:
        task.write(addr, b"X")
    except Exception as exc:
        print(f"\nwrite after vm_protect(READ) -> "
              f"{type(exc).__name__}")

    # --- vm_copy ------------------------------------------------------------
    copy_dst = task.vm_allocate(64 * KB)
    task.vm_copy(addr, 64 * KB, copy_dst)
    print(f"vm_copy snapshot reads: {task.read(copy_dst, 19)!r}")

    # --- introspection ---------------------------------------------------------
    print("\nvm_regions:")
    for region in task.vm_regions():
        target = ("sharing map" if region.shared
                  else f"object #{region.object_id}"
                  if region.object_id else "lazy zero-fill")
        print(f"  [{region.start:#10x}, "
              f"{region.start + region.size:#10x})  "
              f"{region.protection!s:<24} {target}")

    print("\nvm_statistics:")
    print(kernel.vm_statistics().describe())
    print(f"\nsimulated time spent: {kernel.clock.cpu_ms:.2f} ms CPU, "
          f"{kernel.clock.elapsed_ms:.2f} ms elapsed")


if __name__ == "__main__":
    main()
