"""Table 7-1, rows 4-6: "fork 256K" on the RT PC, MicroVAX II and
SUN 3/160.

Paper numbers: RT PC 41ms vs 145ms; uVAX II 59ms vs 220ms;
SUN 3/160 68ms vs 89ms.  Mach's fork is copy-on-write map duplication;
4.3bsd copies every page eagerly; SunOS 3.2 is COW but duplicates MMU
state eagerly (hence the much narrower SUN gap).
"""

from repro import hw
from repro.bench import (
    BsdSUT,
    MachSUT,
    SunOsSUT,
    Table,
    measure_fork,
)

from conftest import record, run_once

ROWS = (
    (hw.IBM_RT_PC, BsdSUT, "41ms", "145ms"),
    (hw.MICROVAX_II, BsdSUT, "59ms", "220ms"),
    (hw.SUN_3_160, SunOsSUT, "68ms", "89ms"),
)


def _run():
    table = Table("Table 7-1: fork 256K", ("Mach", "UNIX"))
    results = []
    for spec, baseline_class, paper_mach, paper_unix in ROWS:
        mach = measure_fork(MachSUT(spec))
        unix = measure_fork(baseline_class(spec))
        table.add(f"fork 256K ({spec.name})",
                  f"{mach.cpu_ms:.0f}ms", f"{unix.cpu_ms:.0f}ms",
                  paper_mach, paper_unix)
        results.append((spec.name, mach.cpu_ms, unix.cpu_ms))
    return table, results


def test_fork_rows(benchmark):
    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    for name, mach_ms, unix_ms in results:
        assert mach_ms < unix_ms, f"Mach must win fork on {name}"
    # Eager-copy baselines lose by ~3x; the COW SunOS baseline only
    # narrowly (paper: 145/41=3.5, 220/59=3.7, 89/68=1.3).
    by_name = {name: (m, u) for name, m, u in results}
    rt = by_name["IBM RT PC"]
    assert rt[1] / rt[0] > 2.5
    sun = by_name["SUN 3/160"]
    assert 1.05 < sun[1] / sun[0] < 2.0


def test_fork_cost_independent_of_dirty_size(benchmark):
    """The structural claim behind the row: Mach fork cost is (nearly)
    flat in the amount of dirty data, the eager baseline's is linear."""
    def _scaling():
        sizes = (64 * 1024, 256 * 1024, 1024 * 1024)
        mach = [measure_fork(MachSUT(hw.MICROVAX_II), s).cpu_ms
                for s in sizes]
        bsd = [measure_fork(BsdSUT(hw.MICROVAX_II), s).cpu_ms
               for s in sizes]
        return mach, bsd

    mach, bsd = run_once(benchmark, _scaling)
    benchmark.extra_info["mach_ms"] = mach
    benchmark.extra_info["bsd_ms"] = bsd
    assert mach[-1] / mach[0] < 1.5          # flat-ish
    assert bsd[-1] / bsd[0] > 4.0            # linear in pages copied
