"""Section 5.1 ablation: the IBM RT PC inverted page table's
one-mapping-per-physical-page restriction.

"physical pages shared by multiple tasks can cause extra page faults,
with each page being mapped and then remapped for the last task which
referenced it.  The surprising result has been that, to date, these
extra faults are rare enough in normal application programs that Mach is
able to outperform a version of UNIX (IBM ACIS 4.2a) on the RT which
avoids such aliasing altogether by using shared segments."

We measure the alias-steal rate of (a) a worst case — tasks ping-ponging
on one shared page — and (b) a realistic fork+COW workload, where shared
pages are touched mostly by one task at a time.
"""

from repro import hw
from repro.bench import Table
from repro.core.constants import VMInherit
from repro.core.kernel import MachKernel

from conftest import record, run_once

PAGE = 4096


def _worst_case(ntasks: int, rounds: int):
    kernel = MachKernel(hw.IBM_RT_PC)
    parent = kernel.task_create()
    addr = parent.vm_allocate(PAGE)
    parent.vm_inherit(addr, PAGE, VMInherit.SHARE)
    parent.write(addr, b"shared")
    tasks = [parent] + [parent.fork() for _ in range(ntasks - 1)]
    ipt = parent.pmap.ipt
    steals_before = ipt.alias_steals
    faults_before = kernel.stats.faults
    for _ in range(rounds):
        for task in tasks:
            assert task.read(addr, 6) == b"shared"
    return (ipt.alias_steals - steals_before,
            kernel.stats.faults - faults_before,
            ntasks * rounds)


def _realistic_forks(nchildren: int):
    """fork + mostly-private touching: the common application shape."""
    kernel = MachKernel(hw.IBM_RT_PC)
    parent = kernel.task_create()
    addr = parent.vm_allocate(32 * PAGE)
    for off in range(0, 32 * PAGE, PAGE):
        parent.write(addr + off, b"init")
    ipt = parent.pmap.ipt
    steals_before = ipt.alias_steals
    faults_before = kernel.stats.faults
    touches = 0
    for _ in range(nchildren):
        child = parent.fork()
        for off in range(0, 32 * PAGE, PAGE):
            child.read(addr + off, 4)      # shared COW read
            child.write(addr + off, b"own")  # then private copy
            touches += 2
        child.terminate()
    return (ipt.alias_steals - steals_before,
            kernel.stats.faults - faults_before, touches)


def test_rt_alias_steal_rates(benchmark):
    def _run():
        table = Table("Section 5.1: RT PC inverted-page-table aliasing",
                      ("alias steals", "total faults"))
        worst = _worst_case(ntasks=4, rounds=8)
        real = _realistic_forks(nchildren=4)
        table.add("worst case: 4 tasks ping-pong 1 shared page",
                  str(worst[0]), str(worst[1]),
                  "~1 steal per", "alternation")
        table.add("realistic: fork + COW touch of 32 pages x4",
                  str(real[0]), str(real[1]),
                  "steals rare vs", "touches")
        return table, worst, real

    table, worst, real = run_once(benchmark, _run)
    record(benchmark, table)
    # Worst case: nearly every alternation steals the mapping back.
    steals, faults, accesses = worst
    assert steals > accesses * 0.5
    # Realistic case: steals are a small fraction of touches ("rare
    # enough in normal application programs").
    steals_r, faults_r, touches = real
    assert steals_r < touches * 0.25
    benchmark.extra_info["worst_steal_rate"] = steals / accesses
    benchmark.extra_info["realistic_steal_rate"] = steals_r / touches
