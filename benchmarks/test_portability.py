"""Section 4 / conclusion: the portability claim, measured on this
codebase.

"the machine-dependent portion of Mach virtual memory consists of a
single code module and its related header file" ... "The size of the
machine dependent mapping module is approximately 6K bytes on a VAX —
about the size of a device driver."

We measure it the same way on the reproduction: each pmap module's size,
its share of the VM system, and a functional check that porting means
writing exactly one small class (the generic pmap is the template).
"""

import os

import repro.core
import repro.pmap
from repro.bench import Table

from conftest import record, run_once

PMAP_MODULES = ("generic.py", "vax.py", "rt_pc.py", "sun3.py",
                "ns32082.py")


def _module_sizes():
    pmap_dir = os.path.dirname(repro.pmap.__file__)
    core_dir = os.path.dirname(repro.core.__file__)

    def loc(path):
        with open(path) as f:
            return sum(1 for line in f
                       if line.strip() and not line.strip().startswith(
                           ("#", '"""', "'''")))

    machine_dependent = {
        name: loc(os.path.join(pmap_dir, name)) for name in PMAP_MODULES
    }
    machine_independent = sum(
        loc(os.path.join(core_dir, name))
        for name in os.listdir(core_dir) if name.endswith(".py"))
    return machine_dependent, machine_independent


def test_machine_dependent_share(benchmark):
    def _run():
        table = Table("Section 4: machine-dependent code size "
                      "(this reproduction)",
                      ("pmap module LoC", "share of MI core"))
        md, mi = _module_sizes()
        for name, lines in sorted(md.items()):
            table.add(name, str(lines), f"{100 * lines / mi:.1f}%",
                      "paper: ~6KB,", "one module")
        return table, md, mi

    table, md, mi = run_once(benchmark, _run)
    record(benchmark, table)
    # Every machine's MD code is one module, small next to the MI core.
    for name, lines in md.items():
        assert lines < mi * 0.25, f"{name} is too large to be 'a " \
            "single code module'"
    # The simplest port (TLB-only generic) is tiny — "would need little
    # code to be written for the pmap module".
    assert md["generic.py"] == min(md.values())
