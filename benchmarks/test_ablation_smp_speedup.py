"""Multiprocessor ablation: the same kernel binary on UP and MP VAXes.

The conclusion: "The kernel binary image for the VAX version runs on
both uniprocessor and multiprocessor VAXes."  Mach's data structures
(one address map per task, sharing maps, the pv table, shootdowns) are
what make that possible.  We run an embarrassingly parallel workload —
independent tasks doing fault-heavy work — on a 1-CPU and the 4-CPU
VAX 11/784 and report the scheduler-level speedup, plus the shootdown
overhead a *shared-memory* variant adds.
"""

import dataclasses

from repro import hw
from repro.bench import Table
from repro.core.constants import VMInherit
from repro.core.kernel import MachKernel
from repro.sched import Scheduler

from conftest import record, run_once

PAGE = 4096
#: Not a multiple of the CPU count, so round-robin scheduling migrates
#: tasks between CPUs (as a real timesharing mix would) and pmaps end
#: up tainted on several TLBs.
NTASKS = 9
WORK_PAGES = 12
ROUNDS = 3


def _parallel_run(ncpus: int, shared: bool):
    spec = dataclasses.replace(hw.VAX_11_784, ncpus=ncpus)
    kernel = MachKernel(spec)
    sched = Scheduler(kernel)
    parent = kernel.task_create()
    shared_addr = parent.vm_allocate(PAGE)
    parent.vm_inherit(shared_addr, PAGE, VMInherit.SHARE)
    parent.write(shared_addr, bytes([0]))

    def make_body(task):
        addr = task.vm_allocate(WORK_PAGES * PAGE)

        def body(ctx):
            for _ in range(ROUNDS):
                for off in range(0, WORK_PAGES * PAGE, PAGE):
                    ctx.write(addr + off, b"work")
                if shared:
                    # Coordination through shared memory plus mapping
                    # churn: the vm_deallocate must reach every CPU the
                    # task has run on (the scheduler migrates tasks, so
                    # pmaps are tainted on several TLBs).
                    ctx.rmw(shared_addr)
                    ctx.task.vm_deallocate(addr, PAGE)
                    ctx.task.vm_allocate(PAGE, address=addr,
                                         anywhere=False)
                yield
        return body

    tasks = [parent.fork() for _ in range(NTASKS)]
    for task in tasks:
        sched.spawn(task, make_body(task))
    snap = kernel.clock.snapshot()
    sched.run()
    # Elapsed on an N-CPU machine ~ total CPU work / N in this model;
    # report total CPU divided by CPU count as the wall-clock proxy.
    cpu_ms = snap.cpu_interval_ms()
    return cpu_ms / ncpus, kernel.pmap_system.ipis_sent


def test_up_vs_mp_same_binary(benchmark):
    def _run():
        table = Table("Conclusion: one binary, UP and MP VAX "
                      "(8 parallel workers)",
                      ("wall-clock proxy ms", "IPIs"))
        results = {}
        for ncpus in (1, 4):
            for shared in (False, True):
                wall, ipis = _parallel_run(ncpus, shared)
                label = (f"{ncpus} cpu, "
                         f"{'shared counter' if shared else 'private'}")
                results[(ncpus, shared)] = (wall, ipis)
                table.add(label, f"{wall:.1f}", str(ipis),
                          "near-linear private", "IPIs tax sharing")
        return table, results

    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    # Private work scales near-linearly with CPUs (the per-CPU wall
    # proxy shrinks ~4x).
    up_private = results[(1, False)][0]
    mp_private = results[(4, False)][0]
    assert mp_private < up_private / 3
    # Mapping churn on shared-memory MP costs shootdown IPIs the UP
    # never pays (on one CPU, every flush is local).
    assert results[(4, True)][1] > 0
    assert results[(1, True)][1] == 0
