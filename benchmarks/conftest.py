"""Benchmark harness helpers.

Each benchmark regenerates one row group of the paper's evaluation
(Tables 7-1 and 7-2) or one ablation from Sections 3-6.  The quantity of
interest is *simulated* time from the machine clock — pytest-benchmark's
wall-clock numbers just measure the simulator itself.  Simulated results
are attached to ``benchmark.extra_info`` and printed, so
``pytest benchmarks/ --benchmark-only -s`` shows the paper-style tables.
"""

from __future__ import annotations

import pytest


def record(benchmark, table) -> None:
    """Attach a rendered table to the benchmark result and print it."""
    benchmark.extra_info["table"] = table.render()
    print()
    print(table.render())


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark (the simulation is
    deterministic; repetition would only re-measure the simulator)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1,
                              warmup_rounds=0)
