"""Table 7-1, rows 1-3: "zero fill 1K" on the RT PC, MicroVAX II and
SUN 3/160 — Mach vs the resident UNIX.

Paper numbers: RT PC .45ms vs .58ms; uVAX II .58ms vs 1.2ms;
SUN 3/160 .23ms vs .27ms.
"""

from repro import hw
from repro.bench import (
    BsdSUT,
    MachSUT,
    SunOsSUT,
    Table,
    measure_zero_fill,
)

from conftest import record, run_once

ROWS = (
    (hw.IBM_RT_PC, BsdSUT, ".45ms", ".58ms"),
    (hw.MICROVAX_II, BsdSUT, ".58ms", "1.2ms"),
    (hw.SUN_3_160, SunOsSUT, ".23ms", ".27ms"),
)


def _run():
    table = Table("Table 7-1: zero fill 1K", ("Mach", "UNIX"))
    results = []
    for spec, baseline_class, paper_mach, paper_unix in ROWS:
        mach = measure_zero_fill(MachSUT(spec))
        unix = measure_zero_fill(baseline_class(spec))
        table.add(f"zero fill 1K ({spec.name})",
                  f"{mach.cpu_ms:.2f}ms", f"{unix.cpu_ms:.2f}ms",
                  paper_mach, paper_unix)
        results.append((spec.name, mach.cpu_ms, unix.cpu_ms))
    return table, results


def test_zero_fill_rows(benchmark):
    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    # Shape assertions: Mach wins on every machine, as in the paper.
    for name, mach_ms, unix_ms in results:
        assert mach_ms < unix_ms, f"Mach must win zero-fill on {name}"
    # The uVAX gap is the big one (paper: ~2x).
    uvax = next(r for r in results if "VAX" in r[0])
    assert uvax[2] / uvax[1] > 1.5
