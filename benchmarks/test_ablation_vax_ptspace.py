"""Section 5.1 ablation: VAX page-table space.

"Although, in theory, a full two gigabyte address space can be allocated
in user state to a VAX process, it is not always practical to do so
because of the large amount of linear page table space required
(8 megabytes). ... The solution chosen for Mach was ... only to
construct those parts of the table which were needed."

We allocate a sparse 1 GB address space, touch k pages scattered across
it, and compare the page-table bytes Mach's lazy construction commits
against the traditional full linear table.
"""

from repro import hw
from repro.bench import Table
from repro.core.kernel import MachKernel
from repro.pmap.vax import VaxPmap

from conftest import record, run_once

PAGE = 4096
GB = 1 << 30


def _sparse_touch(k_pages: int):
    kernel = MachKernel(hw.MICROVAX_II)
    task = kernel.task_create()
    stride = GB // k_pages
    for i in range(k_pages):
        address = (i * stride) // PAGE * PAGE
        task.vm_allocate(PAGE, address=address, anywhere=False)
        task.write(address, b"sparse")
    return task.pmap.pt_bytes(), task.pmap.pt_pages_resident


def test_lazy_page_table_space(benchmark):
    def _run():
        table = Table("Section 5.1: VAX page-table space, sparse 1 GB "
                      "space", ("Mach lazy PT", "full linear PT"))
        full = VaxPmap.full_linear_pt_bytes(GB)
        results = {}
        for k in (1, 16, 256, 1024):
            lazy_bytes, pt_pages = _sparse_touch(k)
            results[k] = lazy_bytes
            table.add(f"touch {k} pages across 1 GB",
                      f"{lazy_bytes} B ({pt_pages} PT pages)",
                      f"{full // (1 << 20)} MB",
                      "(paper: 8 MB", "per region)")
        return table, results, full

    table, results, full = run_once(benchmark, _run)
    record(benchmark, table)
    # The lazy table is far smaller than the 8 MB linear table even in
    # the worst case (every touched page in its own PT page)...
    assert results[1024] < full / 10
    assert results[256] < full / 50
    # ...and scales with touched pages, not address-space size.
    assert results[16] <= 16 * 512
    assert results[1] == 512
