"""Paging-daemon ablation: second-chance reactivation.

Section 3.1 gives the daemon its queues ("Allocation queues are
maintained for free, reclaimable and allocated pages and are used by
the Mach paging daemon").  The inactive-queue scan gives referenced
pages a second chance instead of evicting them — the classic clock
approximation of LRU.  We run a hot/cold working-set workload with the
reactivation logic enabled and ablated, and count how often the hot
set has to be paged back in.
"""

from repro.core.kernel import MachKernel

from conftest import record, run_once
from repro.bench import Table
from repro.bench.testing import make_spec

PAGE = 4096
HOT_PAGES = 8
COLD_PAGES = 64
ROUNDS = 6


def _hot_cold(second_chance: bool):
    kernel = MachKernel(make_spec(memory_frames=24))
    if not second_chance:
        # Ablation: the daemon never reactivates — references are
        # invisible to the scan.
        kernel.pageout_daemon._referenced = lambda page: False
    task = kernel.task_create()
    hot = task.vm_allocate(HOT_PAGES * PAGE)
    cold = task.vm_allocate(COLD_PAGES * PAGE)
    for off in range(0, HOT_PAGES * PAGE, PAGE):
        task.write(hot + off, b"hot")
    snap = kernel.clock.snapshot()
    cold_cursor = 0
    for round_number in range(ROUNDS):
        # A cold streaming sweep, with the hot set re-touched between
        # bursts (so its reference bits are set whenever the daemon's
        # inline scan runs).
        for burst in range(5):
            for off in range(0, HOT_PAGES * PAGE, PAGE):
                task.read(hot + off, 1)
            for _ in range(4):
                task.write(cold + cold_cursor * PAGE, b"c")
                cold_cursor = (cold_cursor + 1) % COLD_PAGES
    elapsed_ms = snap.elapsed_interval_ms()
    hot_pageins = 0
    # How many of the final hot-set touches still hit resident pages?
    pageins_before = kernel.stats.pageins
    for off in range(0, HOT_PAGES * PAGE, PAGE):
        task.read(hot + off, 1)
    hot_pageins = kernel.stats.pageins - pageins_before
    return (kernel.stats.pageins, kernel.stats.reactivations,
            elapsed_ms, hot_pageins)


def test_second_chance_protects_the_hot_set(benchmark):
    def _run():
        table = Table("Paging daemon: second-chance reactivation "
                      "(hot/cold working sets, 24 frames)",
                      ("with 2nd chance", "ablated"))
        with_sc = _hot_cold(True)
        without = _hot_cold(False)
        table.add("total pageins", str(with_sc[0]), str(without[0]),
                  "hot set stays", "hot set thrashes")
        table.add("reactivations", str(with_sc[1]), str(without[1]),
                  "", "")
        table.add("hot-set misses at end", str(with_sc[3]),
                  str(without[3]), "", "")
        table.add("elapsed ms", f"{with_sc[2]:.0f}",
                  f"{without[2]:.0f}", "", "")
        return table, with_sc, without

    table, with_sc, without = run_once(benchmark, _run)
    record(benchmark, table)
    # Reactivation actually happens...
    assert with_sc[1] > 0
    assert without[1] == 0
    # ...and keeps the hot set resident: materially fewer pageins and
    # less elapsed time than the ablated daemon.
    assert with_sc[0] < without[0] * 0.85
    assert with_sc[2] < without[2]
