"""Sections 2/6 ablation: the VM/IPC integration.

"The key to efficiency in Mach is the notion that virtual memory
management can be integrated with a message-oriented communication
facility.  This integration allows large amounts of data including whole
files and even whole address spaces to be sent in a single message with
the efficiency of simple memory remapping."

We send N-megabyte out-of-line messages between tasks and compare the
COW-remap transfer against (a) a simulated by-value byte copy and
(b) the actual cost when the receiver then touches all / some of the
data — the lazy-evaluation payoff profile.
"""

from repro import hw
from repro.bench import Table
from repro.core.kernel import MachKernel
from repro.ipc.message import Message
from repro.ipc.port import Port

from conftest import record, run_once

MB = 1 << 20


def _send(size: int, touch_fraction: float):
    kernel = MachKernel(hw.VAX_8650)
    sender = kernel.task_create()
    receiver = kernel.task_create()
    addr = sender.vm_allocate(size)
    page = kernel.page_size
    for off in range(0, size, page):
        sender.write(addr + off, b"m")
    port = Port()
    snap = kernel.clock.snapshot()
    kernel.msg_send(sender, port, Message().add_ool(addr, size))
    msg = kernel.msg_receive(receiver, port)
    transfer_ms = snap.cpu_interval_ms()
    dst = msg.ool[0].received_at
    snap = kernel.clock.snapshot()
    for off in range(0, int(size * touch_fraction), page):
        receiver.read(dst + off, 1)
    touch_ms = snap.cpu_interval_ms()
    byte_copy_ms = kernel.machine.costs.byte_copy_cost(size) / 1000.0
    return transfer_ms, touch_ms, byte_copy_ms


def test_ool_message_transfer(benchmark):
    def _run():
        table = Table("Sections 2/6: OOL message transfer vs byte copy "
                      "(VAX 8650)", ("COW remap", "by-value copy"))
        results = {}
        for size_mb in (1, 4, 16):
            transfer, touch_all, byte_copy = _send(size_mb * MB, 1.0)
            results[size_mb] = (transfer, touch_all, byte_copy)
            table.add(f"send {size_mb} MB (transfer only)",
                      f"{transfer:.2f}ms", f"{byte_copy:.0f}ms",
                      "remap: cheap PTE work,", "copy: every byte")
        transfer, touch_tenth, byte_copy = _send(16 * MB, 0.1)
        results["sparse"] = (transfer, touch_tenth, byte_copy)
        table.add("send 16 MB, receiver touches 10%",
                  f"{transfer + touch_tenth:.1f}ms",
                  f"{byte_copy:.0f}ms", "lazy evaluation", "wins")
        return table, results

    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    # The remap does per-page PTE work (write-protecting the source),
    # but at a per-MB rate far below copying the bytes...
    per_mb_remap = results[16][0] / 16
    per_mb_copy = results[16][2] / 16
    assert per_mb_remap < per_mb_copy / 10
    # ...and the total stays an order of magnitude under the copy.
    assert results[16][0] < results[16][2] / 10
    # Even with the receiver touching 10% of the pages (paying COW
    # read faults), lazy transfer beats the eager copy.
    sparse = results["sparse"]
    assert sparse[0] + sparse[1] < sparse[2]


def test_whole_address_space_send(benchmark):
    """Paper: "An entire address space may be sent in a single message
    with no actual data copy operations performed."
    """

    def _run():
        kernel = MachKernel(hw.VAX_8650)
        sender = kernel.task_create()
        receiver = kernel.task_create()
        page = kernel.page_size
        # A realistic five-region process image.
        for i in range(5):
            addr = sender.vm_allocate(64 * page,
                                      address=i * 1024 * page,
                                      anywhere=False)
            sender.write(addr, f"region{i}".encode())
        port = Port()
        msg = Message()
        for region in sender.vm_regions():
            msg.add_ool(region.start, region.size)
        copies_before = kernel.stats.cow_faults
        kernel.msg_send(sender, port, msg)
        received = kernel.msg_receive(receiver, port)
        assert kernel.stats.cow_faults == copies_before
        return kernel, receiver, received

    kernel, receiver, received = run_once(benchmark, _run)
    for i, region in enumerate(received.ool):
        data = receiver.read(region.received_at, 7)
        assert data == f"region{i}".encode()
