"""Section 3.1 ablation: the boot-time page size.

"The definition of page size is a boot time system parameter and can be
any power of two multiple of the hardware page size."

The paper does not publish a page-size sweep, but the parameter exists
precisely because of this trade-off: larger Mach pages mean fewer faults
per byte (cheaper zero-fill/pagein throughput) but more copy and zero
work per COW fault, and coarser sharing.  We sweep the boot parameter on
a VAX (hardware page 512 B) and measure both effects.
"""

from repro.bench import Table
from repro.core.constants import FaultType
from repro.core.kernel import MachKernel
from repro.hw.machine import MICROVAX_II

from conftest import record, run_once

KB = 1024


def _zero_fill_throughput(page_size: int) -> float:
    """Simulated ms to demand-zero 256 KB, touching every byte range."""
    kernel = MachKernel(MICROVAX_II, page_size=page_size)
    task = kernel.task_create()
    addr = task.vm_allocate(256 * KB)
    snap = kernel.clock.snapshot()
    for off in range(0, 256 * KB, 1024):
        task.write(addr + off, b"z" * 64)
    return snap.cpu_interval_ms()


def _cow_single_byte_cost(page_size: int) -> float:
    """Simulated ms for one single-byte COW write after a fork."""
    kernel = MachKernel(MICROVAX_II, page_size=page_size)
    task = kernel.task_create()
    addr = task.vm_allocate(64 * KB)
    for off in range(0, 64 * KB, page_size):
        task.write(addr + off, b"d")
    child = task.fork()
    snap = kernel.clock.snapshot()
    kernel.fault(child, addr, FaultType.WRITE)
    return snap.cpu_interval_ms()


def test_boot_time_page_size_tradeoff(benchmark):
    def _run():
        table = Table("Section 3.1: boot-time page size sweep "
                      "(MicroVAX II, hw page 512 B)",
                      ("zero-fill 256K", "one COW write"))
        results = {}
        for page_size in (512, 1024, 2048, 4096, 8192):
            zf = _zero_fill_throughput(page_size)
            cow = _cow_single_byte_cost(page_size)
            results[page_size] = (zf, cow)
            table.add(f"Mach page = {page_size} B",
                      f"{zf:.1f}ms", f"{cow:.2f}ms",
                      "fewer+bigger faults", "bigger copies")
        return table, results

    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    # Bigger pages amortize fault overhead for bulk zero-fill...
    assert results[8192][0] < results[512][0]
    # ...but make a single COW write strictly more expensive (a whole
    # page is copied for one byte).
    assert results[8192][1] > results[512][1]
    # Monotone in both directions across the sweep.
    sizes = sorted(results)
    cow_costs = [results[s][1] for s in sizes]
    assert cow_costs == sorted(cow_costs)
