"""Section 5.2 ablation: the three TLB-consistency strategies on a
multiprocessor whose hardware (like the Multimax and Balance) offers no
TLB coherence.

Workload: M CPUs share a region; the kernel runs a protection-change
storm against it.  IMMEDIATE pays an IPI per change; DEFERRED batches
flushes into timer ticks (cheap CPU, long latency); LAZY pays nothing
until the next context switch but leaves windows of staleness.
"""

from repro import hw
from repro.bench import Table
from repro.core.constants import VMInherit, VMProt
from repro.core.kernel import MachKernel
from repro.pmap.interface import ShootdownStrategy

from conftest import record, run_once

PAGE = 4096
NPAGES = 16
CHANGES = 24


def _storm(strategy: ShootdownStrategy):
    """One multi-threaded task whose pmap is live on all four CPUs —
    "a shared portion of an address map" in the paper's words — while
    the kernel repeatedly changes its protections."""
    kernel = MachKernel(hw.ENCORE_MULTIMAX, shootdown=strategy)
    task = kernel.task_create()
    addr = task.vm_allocate(NPAGES * PAGE)
    task.vm_inherit(addr, NPAGES * PAGE, VMInherit.SHARE)
    # One thread per CPU, all touching the region: every CPU's TLB now
    # caches this pmap's translations.
    for cpu_id in range(4):
        kernel.set_current_cpu(cpu_id)
        for off in range(0, NPAGES * PAGE, PAGE):
            task.write(addr + off, b"w")
    kernel.set_current_cpu(0)
    snap = kernel.clock.snapshot()
    ipis_before = kernel.pmap_system.ipis_sent
    for i in range(CHANGES):
        prot = VMProt.READ if i % 2 == 0 else VMProt.DEFAULT
        task.vm_protect(addr, NPAGES * PAGE, False, prot)
        if strategy is ShootdownStrategy.DEFERRED and i % 8 == 7:
            kernel.machine.tick_all_timers()
    cpu_ms, elapsed_ms = (v / 1000.0 for v in snap.interval())
    return cpu_ms, elapsed_ms, kernel.pmap_system.ipis_sent - ipis_before


def test_shootdown_strategies(benchmark):
    def _run():
        table = Table("Section 5.2: TLB shootdown strategies "
                      "(protection storm, 4 sharers)",
                      ("cpu ms", "elapsed ms"))
        results = {}
        for strategy in ShootdownStrategy:
            cpu_ms, elapsed_ms, ipis = _storm(strategy)
            results[strategy] = (cpu_ms, elapsed_ms, ipis)
            table.add(f"{strategy.value} ({ipis} IPIs)",
                      f"{cpu_ms:.2f}", f"{elapsed_ms:.2f}",
                      "interrupt=CPU cost,", "defer=latency")
        return table, results

    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    imm = results[ShootdownStrategy.IMMEDIATE]
    dfr = results[ShootdownStrategy.DEFERRED]
    lazy = results[ShootdownStrategy.LAZY]
    # IMMEDIATE interrupts remote CPUs: most IPIs, most CPU.
    assert imm[2] > 0
    assert dfr[2] == 0 and lazy[2] == 0
    assert imm[0] > lazy[0]
    # DEFERRED trades CPU for elapsed time (waiting out timer ticks).
    assert dfr[1] > imm[1]
    assert dfr[0] < imm[0]
    # LAZY is the cheapest in both dimensions (and the least safe).
    assert lazy[0] <= dfr[0] and lazy[0] <= imm[0]
