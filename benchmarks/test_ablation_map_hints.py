"""Section 3.2 ablation: address-map lookup hints.

"Moreover, fast lookup on faults can be achieved by keeping last fault
'hints'.  These hints allow the address map list to be searched from
the last entry found for a fault of a particular type."

We build a task with many map entries (a sparse address space, each
region with distinct attributes so entries cannot coalesce) and replay
two fault patterns — sequential sweep and uniform random — measuring
the hint hit rate and simulated lookup cost, against an ablated map
whose hint is disabled.
"""

import random

from repro.bench import Table
from repro.core.constants import VMProt
from repro.core.kernel import MachKernel

from conftest import record, run_once
from repro.bench.testing import make_spec

PAGE = 4096
NREGIONS = 64


def _build_task(kernel):
    task = kernel.task_create()
    bases = []
    for index in range(NREGIONS):
        base = index * 16 * PAGE
        task.vm_allocate(4 * PAGE, address=base, anywhere=False)
        if index % 2:
            # Alternate protections so entries never coalesce.
            task.vm_map.protect(base, 4 * PAGE, VMProt.READ)
        bases.append(base)
    return task, bases


def _disable_hint(vm_map) -> None:
    original = vm_map.lookup_entry

    def no_hint_lookup(address):
        vm_map._hint = None
        return original(address)

    vm_map.lookup_entry = no_hint_lookup


def _replay(pattern: str, hints: bool):
    kernel = MachKernel(make_spec(va_limit=1 << 30,
                                  memory_frames=1024))
    task, bases = _build_task(kernel)
    if not hints:
        _disable_hint(task.vm_map)
    rng = random.Random(42)
    addresses = []
    if pattern == "sequential":
        for base in bases:
            addresses += [base + off for off in range(0, 4 * PAGE,
                                                      PAGE)]
    else:
        addresses = [rng.choice(bases) + rng.randrange(4) * PAGE
                     for _ in range(NREGIONS * 4)]
    snap = kernel.clock.snapshot()
    for address in addresses:
        task.read(address, 1)
    cpu_ms = snap.cpu_interval_ms()
    total = task.vm_map.hint_hits + task.vm_map.hint_misses
    rate = task.vm_map.hint_hits / total if total else 0.0
    return cpu_ms, rate


def test_lookup_hints(benchmark):
    def _run():
        table = Table(f"Section 3.2: last-fault hints "
                      f"({NREGIONS}-entry map)",
                      ("with hints", "hints ablated"))
        results = {}
        for pattern in ("sequential", "random"):
            with_ms, with_rate = _replay(pattern, hints=True)
            without_ms, _ = _replay(pattern, hints=False)
            results[pattern] = (with_ms, with_rate, without_ms)
            table.add(f"{pattern} fault sweep",
                      f"{with_ms:.2f}ms ({with_rate:.0%} hits)",
                      f"{without_ms:.2f}ms",
                      "hints start the scan", "at the last entry")
        return table, results

    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    # Sequential faulting is the hint's home turf: high hit rate and a
    # real simulated-time win (scans are charged per entry visited).
    assert results["sequential"][1] > 0.5
    assert results["sequential"][0] < results["sequential"][2]
    # Random access still beats the ablated map (the hint shortcuts
    # repeat touches, and forward scans start mid-list).
    assert results["random"][0] <= results["random"][2]
