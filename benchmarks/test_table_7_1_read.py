"""Table 7-1, rows 7-10: file reads on the VAX 8200 — 2.5M and 50K
files, first (cold) and second (warm) time, system/elapsed seconds.

Paper numbers (system/elapsed):
    read 2.5M  first   Mach 5.2/11     UNIX 5.0/11
    read 2.5M  second  Mach 1.2/1.4    UNIX 5.0/11
    read 50K   first   Mach .2/.5      UNIX .2/.5
    read 50K   second  Mach .1/.1      UNIX .2/.2

The structural story: Mach's second read comes from the object cache
(all pages still resident), while traditional UNIX has only its fixed
buffer pool, which a 2.5 MB sequential read sweeps straight through.
"""

from repro import hw
from repro.bench import (
    BsdSUT,
    MachSUT,
    Table,
    fmt_sys_elapsed,
    measure_read_file,
)
from repro.bench.workloads import KB, MB

from conftest import record, run_once


def _run():
    table = Table("Table 7-1: read file (VAX 8200, system/elapsed s)",
                  ("Mach", "UNIX"))
    out = {}
    for label, size in (("2.5M", int(2.5 * MB)), ("50K", 50 * KB)):
        mach_first, mach_second = measure_read_file(
            MachSUT(hw.VAX_8200), size)
        unix_first, unix_second = measure_read_file(
            BsdSUT(hw.VAX_8200), size)
        paper = {
            "2.5M": (("5.2/11s", "5.0/11s"), ("1.2/1.4s", "5.0/11s")),
            "50K": ((".2/.5s", ".2/.5s"), (".1/.1s", ".2/.2s")),
        }[label]
        table.add(f"read {label} file, first time",
                  fmt_sys_elapsed(mach_first),
                  fmt_sys_elapsed(unix_first), *paper[0])
        table.add(f"read {label} file, second time",
                  fmt_sys_elapsed(mach_second),
                  fmt_sys_elapsed(unix_second), *paper[1])
        out[label] = (mach_first, mach_second, unix_first, unix_second)
    return table, out


def test_read_file_rows(benchmark):
    table, out = run_once(benchmark, _run)
    record(benchmark, table)
    mach_first, mach_second, unix_first, unix_second = out["2.5M"]
    # First reads cost about the same on both systems (both disk
    # bound); paper: 11s vs 11s elapsed.
    ratio = mach_first.elapsed_ms / unix_first.elapsed_ms
    assert 0.5 < ratio < 2.0
    # Mach's second read is dramatically cheaper than its first
    # (object cache) — paper: 1.4s vs 11s.
    assert mach_second.elapsed_ms < mach_first.elapsed_ms / 4
    # ...while the UNIX second read costs as much as the first (the
    # buffer cache was swept) — paper: 11s again.
    assert unix_second.elapsed_ms > unix_first.elapsed_ms * 0.8
    # And Mach's warm read beats the UNIX warm read outright.
    assert mach_second.elapsed_ms < unix_second.elapsed_ms / 4

    # 50K: fits both caches; both second reads are cheap, Mach's at
    # least as cheap as UNIX's (paper: .1/.1 vs .2/.2).
    m1, m2, u1, u2 = out["50K"]
    assert m2.elapsed_ms < m1.elapsed_ms
    assert u2.elapsed_ms < u1.elapsed_ms
    assert m2.elapsed_ms <= u2.elapsed_ms * 1.2
