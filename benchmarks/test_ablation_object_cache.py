"""Section 3.3 ablation: the memory-object cache.

"In some cases, for example UNIX text segments or other frequently used
files, it is desirable for the kernel to retain information about an
object even after the last mapping reference disappears.  By retaining
the physical page mappings for such objects subsequent reuse can be
made very inexpensive."

We re-exec the same program N times and sweep the object-cache size:
with the object cached, re-execs cost soft faults only; with a cache too
small (or disabled), every exec re-reads the text from disk.  This is
the mechanism behind Table 7-1's second-read row and Table 7-2's
compile numbers, isolated.
"""

from repro import hw
from repro.bench import Table
from repro.core.kernel import MachKernel
from repro.fs.filesystem import FileSystem
from repro.unix.process import UnixSystem

from conftest import record, run_once

KB = 1024
EXECS = 6


def _reexec_cost(cache_limit: int):
    kernel = MachKernel(hw.VAX_8200, object_cache_limit=cache_limit)
    fs = FileSystem(kernel.machine)
    ux = UnixSystem(kernel, fs)
    prog = ux.install_program("/bin/editor", text_size=192 * KB,
                              data_size=32 * KB)
    fs.buffer_cache.sync()
    fs.buffer_cache.invalidate()
    proc = ux.create_process(prog)
    base, size = proc.regions["text"]
    proc.task.read(base, size)              # cold start: load the text
    reads_cold = fs.disk.reads
    snap = kernel.clock.snapshot()
    for _ in range(EXECS):
        proc.exec(prog)
        base, size = proc.regions["text"]
        proc.task.read(base, size)
    elapsed_ms = snap.elapsed_interval_ms()
    return elapsed_ms, fs.disk.reads - reads_cold, \
        kernel.vm.objects.cache_hits


def test_object_cache_makes_reexec_cheap(benchmark):
    def _run():
        table = Table(f"Section 3.3: object cache vs {EXECS} re-execs "
                      "of one program (VAX 8200)",
                      ("elapsed ms", "disk reads"))
        results = {}
        for cache_limit, label in ((0, "cache disabled"),
                                   (64, "cache enabled")):
            elapsed, reads, hits = _reexec_cost(cache_limit)
            results[label] = (elapsed, reads, hits)
            table.add(f"{label} (limit={cache_limit})",
                      f"{elapsed:.0f}", str(reads),
                      "text re-read" if cache_limit == 0
                      else "soft faults only", "")
        return table, results

    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    disabled = results["cache disabled"]
    enabled = results["cache enabled"]
    # With the cache, re-execs do no disk I/O at all...
    assert enabled[1] == 0
    assert enabled[2] >= EXECS          # one cache hit per re-exec
    # ...without it, every exec re-reads the text image.
    assert disabled[1] > 0
    # The elapsed-time gap is the paper's "very inexpensive" claim.
    assert enabled[0] < disabled[0] / 3
