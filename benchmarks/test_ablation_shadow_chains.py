"""Sections 3.4/3.5 ablation: shadow-chain garbage collection.

"Most of the complexity of Mach memory management arises from a need to
prevent the potentially large chains of shadow objects ... A trivial
example of this kind of shadow chaining can be caused by a simple UNIX
process which repeatedly forks its address space."

We run that trivial example — G generations of fork / dirty / child
exits — with collapse enabled (normal) and disabled (ablated), and
compare chain lengths, object counts and fault cost at the end.
"""

from repro import hw
from repro.bench import Table
from repro.core.constants import FaultType
from repro.core.kernel import MachKernel

from conftest import record, run_once

PAGE = 4096
GENERATIONS = 24


def _fork_generations(collapse_enabled: bool):
    kernel = MachKernel(hw.MICROVAX_II)
    if not collapse_enabled:
        kernel.vm.objects.collapse = lambda obj: None      # ablation
    task = kernel.task_create()
    addr = task.vm_allocate(4 * PAGE)
    task.write(addr, b"gen-0")
    for generation in range(GENERATIONS):
        child = task.fork()
        # Parent dirties (creating a shadow), child exits — the classic
        # chain-building pattern.
        task.write(addr, f"gen-{generation + 1}".encode())
        child.terminate()
    found, entry = task.vm_map.lookup_entry(addr)
    chain = entry.vm_object.chain_length()
    live_objects = (kernel.vm.objects.objects_created
                    - kernel.vm.objects.objects_destroyed)
    # Cost of a cold fault at the end: walk the whole chain.
    task.pmap.forget(addr + PAGE)
    snap = kernel.clock.snapshot()
    kernel.fault(task, addr + PAGE, FaultType.READ)
    fault_us, _ = snap.interval()
    garbage_collections = (kernel.vm.objects.collapses
                           + kernel.vm.objects.bypasses)
    return chain, live_objects, fault_us, garbage_collections


def test_shadow_chain_collapse(benchmark):
    def _run():
        table = Table(
            f"Section 3.5: shadow chains after {GENERATIONS} fork "
            "generations", ("with collapse", "collapse disabled"))
        chain_on, objs_on, fault_on, gcs = _fork_generations(True)
        chain_off, objs_off, fault_off, _ = _fork_generations(False)
        table.add("shadow chain length", str(chain_on), str(chain_off),
                  "O(1)", f"O(forks)={GENERATIONS + 1}")
        table.add("live memory objects", str(objs_on), str(objs_off),
                  "bounded", "unbounded")
        table.add("cold-fault cost (us)", f"{fault_on:.0f}",
                  f"{fault_off:.0f}", "flat", "chain walk")
        return table, (chain_on, chain_off, objs_on, objs_off,
                       fault_on, fault_off, gcs)

    table, result = run_once(benchmark, _run)
    record(benchmark, table)
    chain_on, chain_off, objs_on, objs_off, fault_on, fault_off, \
        gcs = result
    assert gcs > 0           # collapses and/or bypasses happened
    assert chain_on <= 3                        # bounded
    assert chain_off >= GENERATIONS             # grows per generation
    assert objs_on < objs_off
    assert fault_on <= fault_off
