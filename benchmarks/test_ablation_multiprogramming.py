"""Section 5.1, scheduled: context competition under real
multiprogramming.

The static ablation (`test_ablation_sun3_contexts.py`) round-robins
tasks by hand.  Here the cooperative scheduler drives the same effect
the way a timesharing system would: K single-threaded tasks doing
identical work, multiplexed over the machine's CPU, crossing the SUN 3's
8-context boundary.  Above the boundary each scheduling round steals
contexts, every steal throws away a task's translations, and the same
work costs measurably more per task.
"""

import dataclasses

from repro.bench import Table
from repro.core.kernel import MachKernel
from repro.sched import Scheduler

from conftest import record, run_once
from repro.bench.testing import make_spec

PAGE = 8192
MB = 1 << 20
WORK_PAGES = 4
ROUNDS = 4


def _timeshare(ntasks: int):
    kernel = MachKernel(make_spec(
        name="sun3-mpl", pmap_name="sun3", hw_page_size=PAGE,
        page_size=PAGE, mmu_contexts=8, va_limit=256 * MB,
        memory_frames=512))
    sched = Scheduler(kernel)

    def make_body(task):
        addr = task.vm_allocate(WORK_PAGES * PAGE)

        def body(ctx):
            for _ in range(ROUNDS):
                for off in range(0, WORK_PAGES * PAGE, PAGE):
                    ctx.write(addr + off, b"w")
                yield
        return body

    for _ in range(ntasks):
        task = kernel.task_create()
        sched.spawn(task, make_body(task))
    snap = kernel.clock.snapshot()
    sched.run()
    cpu_ms = snap.cpu_interval_ms()
    pool = kernel.pmap_system.md_shared["sun3_contexts"]
    return cpu_ms / ntasks, pool.context_steals, kernel.stats.faults


def test_multiprogramming_level_sweep(benchmark):
    def _run():
        table = Table("Section 5.1 (scheduled): SUN 3 timesharing, "
                      "8 contexts", ("cpu ms/task", "context steals"))
        results = {}
        for ntasks in (4, 8, 16, 32):
            per_task_ms, steals, faults = _timeshare(ntasks)
            results[ntasks] = (per_task_ms, steals, faults)
            table.add(f"{ntasks} tasks timeshared",
                      f"{per_task_ms:.2f}", str(steals),
                      "flat to 8 tasks,", "then steals grow")
        return table, results

    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    # No competition at or below the context count.
    assert results[4][1] == 0
    assert results[8][1] == 0
    # Beyond it, steals appear and per-task cost rises.
    assert results[16][1] > 0
    assert results[32][1] > results[16][1]
    assert results[32][0] > results[8][0]
