"""Section 5.1 ablation: SUN 3 hardware-context competition.

"only 8 such contexts may exist at any one time.  If there are more
than 8 active tasks, they compete for contexts, introducing additional
page faults as on the RT."

We round-robin K tasks over their working sets for K in {4, 8, 12, 24}
and report context steals and the per-touch fault overhead.  Below the
context limit there are no steals; above it, every schedule-around
evicts someone's translations.
"""

import dataclasses

from repro import hw
from repro.bench import Table
from repro.core.kernel import MachKernel

from conftest import record, run_once

PAGE = 8192
WORKING_SET_PAGES = 4
ROUNDS = 3


def _round_robin(ntasks: int):
    spec = dataclasses.replace(hw.SUN_3_160,
                               memory_segments=((0, 64 << 20),))
    kernel = MachKernel(spec)
    tasks = []
    addrs = []
    for _ in range(ntasks):
        task = kernel.task_create()
        addr = task.vm_allocate(WORKING_SET_PAGES * PAGE)
        for off in range(0, WORKING_SET_PAGES * PAGE, PAGE):
            task.write(addr + off, b"w")
        tasks.append(task)
        addrs.append(addr)
    pool = kernel.pmap_system.md_shared["sun3_contexts"]
    steals_before = pool.context_steals
    faults_before = kernel.stats.faults
    touches = 0
    for _ in range(ROUNDS):
        for task, addr in zip(tasks, addrs):
            for off in range(0, WORKING_SET_PAGES * PAGE, PAGE):
                task.read(addr + off, 1)
                touches += 1
    return (pool.context_steals - steals_before,
            kernel.stats.faults - faults_before, touches)


def test_sun3_context_competition(benchmark):
    def _run():
        table = Table("Section 5.1: SUN 3 context competition "
                      "(8 contexts)", ("context steals", "faults/touch"))
        results = {}
        for ntasks in (4, 8, 12, 24):
            steals, faults, touches = _round_robin(ntasks)
            results[ntasks] = (steals, faults, touches)
            table.add(f"{ntasks} tasks round-robin",
                      str(steals), f"{faults / touches:.3f}",
                      "0 below" if ntasks <= 8 else ">0 above",
                      "8 contexts")
        return table, results

    table, results = run_once(benchmark, _run)
    record(benchmark, table)
    # At or below 8 active tasks: no competition.
    assert results[4][0] == 0
    assert results[8][0] == 0
    # Above: steals appear and grow with the task count.
    assert results[12][0] > 0
    assert results[24][0] > results[12][0]
    # The extra faults are real but bounded (the paper's RT-style
    # "additional page faults").
    assert results[24][1] / results[24][2] > results[8][1] / \
        results[8][2]
