"""Table 7-2: overall compilation performance, Mach vs 4.3bsd.

Paper numbers (VAX 8650):
    400 buffers:  13 programs 23s vs 28s;  Mach kernel 19:58 vs 23:38
    generic:      13 programs 19s vs 1:16; Mach kernel 15:50 vs 34:10
SUN 3/160: compile fork-test program, Mach 3s vs SunOS 6s.

"Generic configuration reflects the normal allocation of 4.3bsd
buffers" (small); "the 400 buffer times reflect specific limits set on
the use of disk buffers by both systems" (for Mach: a cap on the object
cache).  Mach is nearly config-insensitive; 4.3bsd collapses when its
only file cache shrinks.
"""

import pytest

from repro import hw
from repro.bench import (
    BsdSUT,
    FORK_TEST_PROGRAM,
    MACH_KERNEL_BUILD,
    MachSUT,
    SunOsSUT,
    THIRTEEN_PROGRAMS,
    Table,
    fmt_min,
    run_compile_workload,
)

from conftest import record, run_once

GENERIC_NBUFS = 64


def test_thirteen_programs(benchmark):
    def _run():
        table = Table("Table 7-2: 13 programs (VAX 8650)",
                      ("Mach", "4.3bsd"))
        m400 = run_compile_workload(
            MachSUT(hw.VAX_8650, buffer_limit=400), THIRTEEN_PROGRAMS)
        u400 = run_compile_workload(
            BsdSUT(hw.VAX_8650, nbufs=400), THIRTEEN_PROGRAMS)
        mgen = run_compile_workload(
            MachSUT(hw.VAX_8650), THIRTEEN_PROGRAMS)
        ugen = run_compile_workload(
            BsdSUT(hw.VAX_8650, nbufs=GENERIC_NBUFS), THIRTEEN_PROGRAMS)
        table.add("13 programs, 400 buffers",
                  f"{m400.elapsed_ms / 1000:.0f}sec",
                  f"{u400.elapsed_ms / 1000:.0f}sec", "23sec", "28sec")
        table.add("13 programs, generic config",
                  f"{mgen.elapsed_ms / 1000:.0f}sec",
                  f"{ugen.elapsed_ms / 1000:.0f}sec", "19sec", "1:16min")
        return table, (m400, u400, mgen, ugen)

    table, (m400, u400, mgen, ugen) = run_once(benchmark, _run)
    record(benchmark, table)
    # Mach wins both configurations.
    assert m400.elapsed_ms < u400.elapsed_ms
    assert mgen.elapsed_ms < ugen.elapsed_ms
    # The generic config devastates 4.3bsd (paper: 28s -> 1:16) but
    # barely moves Mach (paper: 23s -> 19s).
    assert ugen.elapsed_ms > u400.elapsed_ms * 1.8
    assert abs(mgen.elapsed_ms - m400.elapsed_ms) \
        < 0.35 * m400.elapsed_ms


@pytest.mark.slow
def test_mach_kernel_build(benchmark):
    def _run():
        table = Table("Table 7-2: Mach kernel build (VAX 8650)",
                      ("Mach", "4.3bsd"))
        m400 = run_compile_workload(
            MachSUT(hw.VAX_8650, buffer_limit=400), MACH_KERNEL_BUILD)
        u400 = run_compile_workload(
            BsdSUT(hw.VAX_8650, nbufs=400), MACH_KERNEL_BUILD)
        mgen = run_compile_workload(
            MachSUT(hw.VAX_8650), MACH_KERNEL_BUILD)
        ugen = run_compile_workload(
            BsdSUT(hw.VAX_8650, nbufs=GENERIC_NBUFS), MACH_KERNEL_BUILD)
        table.add("Mach kernel, 400 buffers", fmt_min(m400.elapsed_ms),
                  fmt_min(u400.elapsed_ms), "19:58min", "23:38min")
        table.add("Mach kernel, generic config", fmt_min(mgen.elapsed_ms),
                  fmt_min(ugen.elapsed_ms), "15:50min", "34:10min")
        return table, (m400, u400, mgen, ugen)

    table, (m400, u400, mgen, ugen) = run_once(benchmark, _run)
    record(benchmark, table)
    assert m400.elapsed_ms < u400.elapsed_ms
    assert mgen.elapsed_ms < ugen.elapsed_ms
    assert ugen.elapsed_ms > mgen.elapsed_ms * 1.4


def test_fork_test_compile_sun(benchmark):
    def _run():
        table = Table("Table 7-2: compile fork test program (SUN 3/160)",
                      ("Mach", "SunOS 3.2"))
        mach = run_compile_workload(MachSUT(hw.SUN_3_160),
                                    FORK_TEST_PROGRAM)
        sunos = run_compile_workload(SunOsSUT(hw.SUN_3_160),
                                     FORK_TEST_PROGRAM)
        table.add("compile fork test program",
                  f"{mach.elapsed_ms / 1000:.1f}sec",
                  f"{sunos.elapsed_ms / 1000:.1f}sec", "3sec", "6sec")
        return table, (mach, sunos)

    table, (mach, sunos) = run_once(benchmark, _run)
    record(benchmark, table)
    assert mach.elapsed_ms < sunos.elapsed_ms
