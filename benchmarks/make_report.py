#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md by running every benchmark workload and
recording paper-vs-measured for each table row.

Run:  python benchmarks/make_report.py  (from the repository root)
"""

from __future__ import annotations

import io
import sys

from repro import hw
from repro.bench import (
    BsdSUT,
    FORK_TEST_PROGRAM,
    MACH_KERNEL_BUILD,
    MachSUT,
    SunOsSUT,
    THIRTEEN_PROGRAMS,
    Table,
    fmt_min,
    fmt_sys_elapsed,
    measure_fork,
    measure_read_file,
    measure_zero_fill,
    run_compile_workload,
)
from repro.bench.workloads import KB, MB

GENERIC_NBUFS = 64

HEADER = """\
# EXPERIMENTS — paper vs. measured

All numbers below are **simulated times** produced by running the
reproduced algorithms on the simulated hardware substrate
(`repro.hw`), next to the numbers published in the paper (Rashid et
al., ASPLOS 1987, Tables 7-1 and 7-2).  Per DESIGN.md, per-operation
*microcosts* were calibrated against the paper's Table 7-1 Mach column;
everything structural — fault counts, page copies, disk transfers,
cache behaviour, who wins and by what factor — emerges from executing
the actual machine-independent VM code against the baselines.

Regenerate with `python benchmarks/make_report.py`; the same workloads
run (with shape assertions) under
`pytest benchmarks/ --benchmark-only`.

"""


def zero_fill_table() -> Table:
    table = Table("Table 7-1 — zero fill 1K (ms, CPU)",
                  ("Mach", "UNIX"))
    rows = ((hw.IBM_RT_PC, BsdSUT, ".45ms", ".58ms"),
            (hw.MICROVAX_II, BsdSUT, ".58ms", "1.2ms"),
            (hw.SUN_3_160, SunOsSUT, ".23ms", ".27ms"))
    for spec, base, paper_mach, paper_unix in rows:
        mach = measure_zero_fill(MachSUT(spec))
        unix = measure_zero_fill(base(spec))
        table.add(f"zero fill 1K ({spec.name})",
                  f"{mach.cpu_ms:.2f}ms", f"{unix.cpu_ms:.2f}ms",
                  paper_mach, paper_unix)
    return table


def fork_table() -> Table:
    table = Table("Table 7-1 — fork 256K (ms, CPU)",
                  ("Mach", "UNIX"))
    rows = ((hw.IBM_RT_PC, BsdSUT, "41ms", "145ms"),
            (hw.MICROVAX_II, BsdSUT, "59ms", "220ms"),
            (hw.SUN_3_160, SunOsSUT, "68ms", "89ms"))
    for spec, base, paper_mach, paper_unix in rows:
        mach = measure_fork(MachSUT(spec))
        unix = measure_fork(base(spec))
        table.add(f"fork 256K ({spec.name})",
                  f"{mach.cpu_ms:.0f}ms", f"{unix.cpu_ms:.0f}ms",
                  paper_mach, paper_unix)
    return table


def read_table() -> Table:
    table = Table("Table 7-1 — read file, VAX 8200 (system/elapsed s)",
                  ("Mach", "UNIX"))
    paper = {
        "2.5M": (("5.2/11s", "5.0/11s"), ("1.2/1.4s", "5.0/11s")),
        "50K": ((".2/.5s", ".2/.5s"), (".1/.1s", ".2/.2s")),
    }
    for label, size in (("2.5M", int(2.5 * MB)), ("50K", 50 * KB)):
        mach_first, mach_second = measure_read_file(
            MachSUT(hw.VAX_8200), size)
        unix_first, unix_second = measure_read_file(
            BsdSUT(hw.VAX_8200), size)
        table.add(f"read {label}, first time",
                  fmt_sys_elapsed(mach_first),
                  fmt_sys_elapsed(unix_first), *paper[label][0])
        table.add(f"read {label}, second time",
                  fmt_sys_elapsed(mach_second),
                  fmt_sys_elapsed(unix_second), *paper[label][1])
    return table


def compile_table() -> Table:
    table = Table("Table 7-2 — compilation (elapsed)",
                  ("Mach", "UNIX"))
    m400 = run_compile_workload(MachSUT(hw.VAX_8650, buffer_limit=400),
                                THIRTEEN_PROGRAMS)
    u400 = run_compile_workload(BsdSUT(hw.VAX_8650, nbufs=400),
                                THIRTEEN_PROGRAMS)
    mgen = run_compile_workload(MachSUT(hw.VAX_8650),
                                THIRTEEN_PROGRAMS)
    ugen = run_compile_workload(BsdSUT(hw.VAX_8650,
                                       nbufs=GENERIC_NBUFS),
                                THIRTEEN_PROGRAMS)
    table.add("13 programs, 400 buffers (VAX 8650)",
              f"{m400.elapsed_ms / 1000:.0f}sec",
              f"{u400.elapsed_ms / 1000:.0f}sec", "23sec", "28sec")
    table.add("13 programs, generic config (VAX 8650)",
              f"{mgen.elapsed_ms / 1000:.0f}sec",
              f"{ugen.elapsed_ms / 1000:.0f}sec", "19sec", "1:16min")

    km400 = run_compile_workload(MachSUT(hw.VAX_8650, buffer_limit=400),
                                 MACH_KERNEL_BUILD)
    ku400 = run_compile_workload(BsdSUT(hw.VAX_8650, nbufs=400),
                                 MACH_KERNEL_BUILD)
    kmgen = run_compile_workload(MachSUT(hw.VAX_8650),
                                 MACH_KERNEL_BUILD)
    kugen = run_compile_workload(BsdSUT(hw.VAX_8650,
                                        nbufs=GENERIC_NBUFS),
                                 MACH_KERNEL_BUILD)
    table.add("Mach kernel, 400 buffers (VAX 8650)",
              fmt_min(km400.elapsed_ms), fmt_min(ku400.elapsed_ms),
              "19:58min", "23:38min")
    table.add("Mach kernel, generic config (VAX 8650)",
              fmt_min(kmgen.elapsed_ms), fmt_min(kugen.elapsed_ms),
              "15:50min", "34:10min")

    mach_ft = run_compile_workload(MachSUT(hw.SUN_3_160),
                                   FORK_TEST_PROGRAM)
    sun_ft = run_compile_workload(SunOsSUT(hw.SUN_3_160),
                                  FORK_TEST_PROGRAM)
    table.add("compile fork test program (SUN 3/160)",
              f"{mach_ft.elapsed_ms / 1000:.1f}sec",
              f"{sun_ft.elapsed_ms / 1000:.1f}sec", "3sec", "6sec")
    return table


COMMENTARY = """

## Reading the comparison

**Where the reproduction matches the paper (shape and rough factor):**

* **zero fill / fork** — calibrated rows; within a few percent of the
  published numbers.  The *structure* behind fork is reproduced, not
  fitted: `benchmarks/test_table_7_1_fork.py` additionally shows Mach's
  fork cost flat in dirty-data size while the eager baseline scales
  linearly, and that SunOS's COW-with-eager-MMU-copy lands in between —
  exactly the paper's RT/uVAX (3.5x) vs SUN (1.3x) pattern.
* **read 2.5M file** — first reads cost the same on both systems (disk
  bound); Mach's second read is ~10x cheaper (object cache holds all
  640 pages) while 4.3bsd's second read repeats the first (its 1 MB
  buffer pool was swept by the 2.5 MB scan).  This is the paper's
  signature result and it emerges entirely from the cache structures.
* **compilation** — Mach wins both configurations, is nearly
  insensitive to the buffer knob, and 4.3bsd degrades ~2-3x in the
  generic configuration (paper: ~2.7x for the 13 programs, ~1.45x for
  the kernel build).

**Known deltas (documented, not hidden):**

* 4.3bsd's measured *first* 2.5M read is somewhat cheaper than Mach's
  in CPU (3.4s vs 5.0s; paper has them equal at ~5s) — our baseline
  charges no per-block filesystem CPU beyond the buffer-cache path.
* The paper's Mach slows from 19s to 23s when its cache is capped at
  400 buffers; our cap (an object-cache page limit) binds more weakly,
  so measured Mach is nearly identical across configurations.
* The SUN fork-test compile gap is ~1.25x measured vs 2x in the paper;
  the published 3s/6s numbers are at the measurement-granularity floor
  and the paper does not say what dominated the extra 3 seconds.

## Ablations (Sections 3-6 claims, regenerated by `pytest benchmarks/`)

| Claim | Benchmark | Result |
|---|---|---|
| RT PC inverted page table causes alias faults, "rare enough" in real programs | `test_ablation_rt_alias.py` | worst case ~1 steal/alternation; fork+COW workload <25% steals/touch |
| SUN 3's 8 contexts cause competition above 8 active tasks | `test_ablation_sun3_contexts.py` | 0 steals at <=8 tasks; steals grow with task count beyond |
| Lazy VAX page tables avoid the 8 MB linear table | `test_ablation_vax_ptspace.py` | 512 B for one touched page in 1 GB; >10x below linear even with 1024 scattered pages |
| Three TLB shootdown strategies trade CPU vs latency vs consistency | `test_ablation_tlb_shootdown.py` | immediate: IPIs+CPU; deferred: 0 IPIs, 3x elapsed; lazy: cheapest, stale windows |
| Shadow-chain GC keeps fork chains O(1) | `test_ablation_shadow_chains.py` | chain length <=3 with GC vs 25 without, after 24 fork generations |
| OOL messages move data by remap, not copy | `test_ablation_ipc_transfer.py` | 16 MB send ~30x cheaper than byte copy; wins even when 10% of pages are then touched |
| MD code is "a single code module", small | `test_portability.py` | each pmap module <25% of the MI core; the TLB-only pmap is the smallest |
| Boot-time page size trades fault count vs copy size | `test_ablation_page_size.py` | zero-fill throughput improves, single-byte COW cost worsens, monotonically from 512 B to 8 KB |
| Object cache makes program re-exec "very inexpensive" | `test_ablation_object_cache.py` | 6 re-execs: zero disk reads with the cache, >3x elapsed without |
| Virtually addressed caches handled inside pmap | `test_ablation_vac.py` | aliased sharing pays flushes; private use pays none |
| Context competition under real timesharing | `test_ablation_multiprogramming.py` | steals appear only above 8 scheduled tasks and grow with load |
| One kernel binary, UP and MP | `test_ablation_smp_speedup.py` | ~4x private speedup on 4 CPUs; mapping churn on MP pays IPIs a UP never sees |
| Last-fault hints speed map lookup | `test_ablation_map_hints.py` | >50% hint hits on sequential sweeps; measurable scan-time win |
| Second-chance scan protects the hot set | `test_ablation_second_chance.py` | ~30% fewer pageins than an ablated daemon on hot/cold working sets |
"""


def main() -> None:
    out = io.StringIO()
    out.write(HEADER)
    for builder in (zero_fill_table, fork_table, read_table,
                    compile_table):
        table = builder()
        out.write(table.markdown())
        out.write("\n\n")
        print(f"generated: {table.title}")
    out.write(COMMENTARY)
    with open("EXPERIMENTS.md", "w") as f:
        f.write(out.getvalue())
    print("wrote EXPERIMENTS.md")


if __name__ == "__main__":
    sys.exit(main())
