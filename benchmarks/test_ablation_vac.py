"""Conclusion-section ablation: the virtually addressed cache.

The paper notes Mach runs on "the virtual-address-cached SUN" models
without machine-independent changes — the cache's alias problem is
absorbed by the pmap module.  We measure what that absorption costs:
the same workloads on the plain SUN 3/160 (physically indexed MMU
path) and the SUN 3/260-style VAC pmap, with the flush counters
exposed.
"""

from repro.bench import Table
from repro.core.constants import VMInherit
from repro.core.kernel import MachKernel

from conftest import record, run_once
from repro.bench.testing import make_spec

PAGE = 8192
MB = 1 << 20


def _make(pmap_name: str) -> MachKernel:
    return MachKernel(make_spec(name=f"vac-{pmap_name}",
                                pmap_name=pmap_name, hw_page_size=PAGE,
                                page_size=PAGE, mmu_contexts=8,
                                va_limit=256 * MB, memory_frames=256))


def _shared_ping_pong(pmap_name: str, rounds: int = 12):
    kernel = _make(pmap_name)
    parent = kernel.task_create()
    addr = parent.vm_allocate(2 * PAGE)
    parent.vm_inherit(addr, 2 * PAGE, VMInherit.SHARE)
    parent.write(addr, b"seed")
    child = parent.fork()
    snap = kernel.clock.snapshot()
    for i in range(rounds):
        child.write(addr, f"c{i}".encode())
        parent.read(addr, 2)
        parent.write(addr, f"p{i}".encode())
        child.read(addr, 2)
    cpu_ms = snap.cpu_interval_ms()
    flushes = getattr(parent.pmap, "vac_flushes", 0)
    return cpu_ms, flushes


def _private_churn(pmap_name: str, npages: int = 64):
    kernel = _make(pmap_name)
    task = kernel.task_create()
    addr = task.vm_allocate(npages * PAGE)
    snap = kernel.clock.snapshot()
    for off in range(0, npages * PAGE, PAGE):
        task.write(addr + off, b"private")
    for off in range(0, npages * PAGE, PAGE):
        task.read(addr + off, 4)
    cpu_ms = snap.cpu_interval_ms()
    flushes = getattr(task.pmap, "vac_flushes", 0)
    return cpu_ms, flushes


def test_vac_overhead(benchmark):
    def _run():
        table = Table("Conclusion: virtually addressed cache overhead "
                      "(SUN 3 segment MMU)",
                      ("plain sun3", "sun3 + VAC"))
        pp_plain = _shared_ping_pong("sun3")
        pp_vac = _shared_ping_pong("sun3_vac")
        table.add("shared-page ping-pong (cpu ms)",
                  f"{pp_plain[0]:.2f}", f"{pp_vac[0]:.2f}",
                  f"{pp_plain[1]} flushes", f"{pp_vac[1]} flushes")
        pc_plain = _private_churn("sun3")
        pc_vac = _private_churn("sun3_vac")
        table.add("private 64-page churn (cpu ms)",
                  f"{pc_plain[0]:.2f}", f"{pc_vac[0]:.2f}",
                  f"{pc_plain[1]} flushes", f"{pc_vac[1]} flushes")
        return table, (pp_plain, pp_vac, pc_plain, pc_vac)

    table, (pp_plain, pp_vac, pc_plain, pc_vac) = run_once(benchmark,
                                                           _run)
    record(benchmark, table)
    # Aliased sharing pays for VAC flushes...
    assert pp_vac[1] > 0
    assert pp_vac[0] > pp_plain[0]
    # ...but private (unaliased) use costs nothing extra in flushes —
    # the discipline only triggers on real aliases and evictions.
    assert pc_vac[1] == 0
    # And the MI layer never noticed: both runs produced identical
    # fault-level behaviour (asserted structurally in the test suite).
